// Package baseline_test drives all three baseline stores through the
// shared kvstore.Store interface with a common model-based suite, plus
// per-store behavioural checks (stalls, container mechanics).
package baseline_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"miodb/internal/baseline/leveldbkv"
	"miodb/internal/baseline/matrixkv"
	"miodb/internal/baseline/novelsm"
	"miodb/internal/kvstore"
	"miodb/internal/lsm"
)

func smallLSM() lsm.Options {
	return lsm.Options{TableSize: 8 << 10, L1Size: 32 << 10, NumLevels: 5}
}

type factory struct {
	name string
	open func(t *testing.T) kvstore.Store
}

func factories() []factory {
	return []factory{
		{"leveldb", func(t *testing.T) kvstore.Store {
			db, err := leveldbkv.Open(leveldbkv.Options{MemTableSize: 8 << 10, LSM: smallLSM()})
			if err != nil {
				t.Fatal(err)
			}
			return db
		}},
		{"novelsm", func(t *testing.T) kvstore.Store {
			db, err := novelsm.Open(novelsm.Options{
				MemTableSize: 8 << 10, NVMBufferSize: 64 << 10, LSM: smallLSM(),
			})
			if err != nil {
				t.Fatal(err)
			}
			return db
		}},
		{"novelsm-nosst", func(t *testing.T) kvstore.Store {
			db, err := novelsm.Open(novelsm.Options{
				MemTableSize: 8 << 10, NVMBufferSize: 64 << 10, NoSST: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return db
		}},
		{"matrixkv", func(t *testing.T) kvstore.Store {
			db, err := matrixkv.Open(matrixkv.Options{
				MemTableSize: 8 << 10, NVMBufferSize: 64 << 10, LSM: smallLSM(),
			})
			if err != nil {
				t.Fatal(err)
			}
			return db
		}},
	}
}

func TestModelEquivalenceAllStores(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			db := f.open(t)
			defer db.Close()
			golden := map[string]string{}
			rnd := rand.New(rand.NewSource(42))
			for i := 0; i < 4000; i++ {
				k := fmt.Sprintf("key-%05d", rnd.Intn(1200))
				v := fmt.Sprintf("val-%d", i)
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				golden[k] = v
				if i%19 == 0 {
					dk := fmt.Sprintf("key-%05d", rnd.Intn(1200))
					if err := db.Delete([]byte(dk)); err != nil {
						t.Fatal(err)
					}
					delete(golden, dk)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			missing, wrong := 0, 0
			for k, v := range golden {
				got, err := db.Get([]byte(k))
				if err != nil {
					missing++
					continue
				}
				if string(got) != v {
					wrong++
				}
			}
			if missing > 0 || wrong > 0 {
				t.Fatalf("%d missing, %d wrong of %d", missing, wrong, len(golden))
			}
			// Deleted keys stay dead.
			probeDel := 0
			for i := 0; i < 1200; i++ {
				k := fmt.Sprintf("key-%05d", i)
				if _, present := golden[k]; present {
					continue
				}
				if _, err := db.Get([]byte(k)); err == nil {
					probeDel++
				}
			}
			if probeDel > 0 {
				t.Fatalf("%d absent keys resurrected", probeDel)
			}
			// Full scan matches the model.
			seen := map[string]string{}
			var prev []byte
			err := db.Scan(nil, 0, func(k, v []byte) bool {
				if prev != nil && bytes.Compare(k, prev) <= 0 {
					t.Fatalf("scan out of order at %q", k)
				}
				prev = append(prev[:0], k...)
				seen[string(k)] = string(v)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != len(golden) {
				t.Fatalf("scan saw %d keys, want %d", len(seen), len(golden))
			}
			for k, v := range golden {
				if seen[k] != v {
					t.Fatalf("scan[%s] = %q, want %q", k, seen[k], v)
				}
			}
		})
	}
}

func TestConcurrentReadersAllStores(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			db := f.open(t)
			defer db.Close()
			const nKeys = 300
			for i := 0; i < nKeys; i++ {
				db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v-init"))
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errCh := make(chan error, 4)
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(int64(g)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := fmt.Sprintf("key-%04d", rnd.Intn(nKeys))
						v, err := db.Get([]byte(k))
						if err != nil || !bytes.HasPrefix(v, []byte("v-")) {
							select {
							case errCh <- fmt.Errorf("Get(%s) = %q, %v", k, v, err):
							default:
							}
							return
						}
					}
				}(g)
			}
			rnd := rand.New(rand.NewSource(7))
			for i := 0; i < 6000; i++ {
				k := fmt.Sprintf("key-%04d", rnd.Intn(nKeys))
				if err := db.Put([]byte(k), []byte(fmt.Sprintf("v-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}
		})
	}
}

func TestLevelDBStallAccounting(t *testing.T) {
	// A tight LSM configuration must exhibit the classic stalls: slowdown
	// (cumulative) and/or blocking (interval) under sustained load.
	db, err := leveldbkv.Open(leveldbkv.Options{
		MemTableSize: 4 << 10,
		LSM:          lsm.Options{TableSize: 4 << 10, L1Size: 8 << 10, NumLevels: 4, L0Slowdown: 2, L0Stop: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	db.Flush()
	s := db.Stats()
	if s.CumulativeStall == 0 && s.IntervalStall == 0 {
		t.Error("classic LSM under pressure recorded no stalls at all")
	}
	if s.SerializeTime == 0 {
		t.Error("no serialization time recorded")
	}
	if s.WriteAmplification < 1.5 {
		t.Errorf("classic LSM WA = %.2f, expected compaction rewrite traffic", s.WriteAmplification)
	}
	t.Logf("leveldb: WA=%.2f cumStall=%v intStall=%v", s.WriteAmplification, s.CumulativeStall, s.IntervalStall)
}

func TestNoveLSMSpillsToSSTables(t *testing.T) {
	db, err := novelsm.Open(novelsm.Options{
		MemTableSize: 4 << 10, NVMBufferSize: 16 << 10, LSM: smallLSM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	golden := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", i%900)
		v := fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
	}
	db.Flush()
	for k, v := range golden {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	s := db.Stats()
	var diskWritten int64
	for _, d := range s.Devices {
		if d.Name == "nvm-block" {
			diskWritten = d.BytesWritten
		}
	}
	if diskWritten == 0 {
		t.Error("NVM memtable never spilled to SSTables")
	}
}

func TestNoveLSMNoSSTKeepsEverythingInSkipList(t *testing.T) {
	db, err := novelsm.Open(novelsm.Options{
		MemTableSize: 4 << 10, NVMBufferSize: 16 << 10, NoSST: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Flush()
	s := db.Stats()
	if s.SerializeTime != 0 {
		t.Error("NoSST variant serialized something")
	}
	for _, i := range []int{0, 999, 1999} {
		v, err := db.Get([]byte(fmt.Sprintf("key-%05d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
}

func TestMatrixKVColumnCompactionDrainsContainer(t *testing.T) {
	db, err := matrixkv.Open(matrixkv.Options{
		MemTableSize: 4 << 10, NVMBufferSize: 24 << 10, LSM: smallLSM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	golden := map[string]string{}
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%05d", rnd.Intn(1500))
		v := fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
	}
	db.Flush()
	s := db.Stats()
	if s.Compactions == 0 {
		t.Error("no column compactions ran")
	}
	var diskWritten int64
	for _, d := range s.Devices {
		if d.Name == "nvm-block" {
			diskWritten = d.BytesWritten
		}
	}
	if diskWritten == 0 {
		t.Error("columns never reached L1")
	}
	for k, v := range golden {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	// MatrixKV's design goal: no interval stalls under this load.
	if db.ContainerBytes() > 2*(24<<10) {
		t.Errorf("container never drained: %d live bytes", db.ContainerBytes())
	}
}

func TestNoveLSMHierarchicalVariant(t *testing.T) {
	db, err := novelsm.Open(novelsm.Options{
		MemTableSize: 4 << 10, NVMBufferSize: 16 << 10,
		Hierarchical: true, LSM: smallLSM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	golden := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", i%900)
		v := fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for k, v := range golden {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("hierarchical Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	// The staging tier must have spilled to SSTables (16 KB buffer vs
	// ~45 KB of data).
	s := db.Stats()
	var diskWritten int64
	for _, d := range s.Devices {
		if d.Name == "nvm-block" {
			diskWritten = d.BytesWritten
		}
	}
	if diskWritten == 0 {
		t.Error("hierarchical staging tier never spilled to SSTables")
	}
	// Scans cross all tiers.
	n := 0
	if err := db.Scan(nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != len(golden) {
		t.Fatalf("scan saw %d keys, want %d", n, len(golden))
	}
}

func TestCloseWhileWriterStalled(t *testing.T) {
	// A writer blocked in a stall must unblock when the store closes
	// concurrently, returning ErrClosed rather than deadlocking.
	db, err := novelsm.Open(novelsm.Options{
		MemTableSize: 4 << 10, NVMBufferSize: 8 << 10,
		LSM: lsm.Options{TableSize: 4 << 10, L1Size: 8 << 10, NumLevels: 3, L0Slowdown: 1, L0Stop: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		var lastErr error
		for i := 0; i < 50000; i++ {
			if lastErr = db.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("v"), 512)); lastErr != nil {
				break
			}
		}
		done <- lastErr
	}()
	time.Sleep(50 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && err != kvstore.ErrClosed {
			t.Fatalf("writer returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer deadlocked across Close")
	}
}
