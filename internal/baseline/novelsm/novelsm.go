// Package novelsm reimplements NoveLSM (Kannan et al., ATC'18) as the
// MioDB paper evaluates it: the *flat* architecture, where a large mutable
// persistent memtable in NVM extends the DRAM write buffer, plus the
// NoveLSM-NoSST variant (one big NVM skip list, no SSTables at all).
//
// Buffering alternates, preserving LevelDB's sequence-dominance invariant
// (every memtable made immutable is newer than everything below it):
//
//	DRAM memtable fills → becomes immutable, queued for flush; writes
//	continue *in place* into the big NVM memtable (persistent, so no WAL
//	entry is needed — NoveLSM's stall mitigation), each insert paying an
//	O(log N) position search plus a copy on slow NVM;
//	NVM memtable fills → becomes immutable, queued; writes return to a
//	fresh DRAM memtable.
//
// Immutable buffers serialize to L0 SSTables in order. Flushing the huge
// NVM memtable is the slow, blocking step whose backlog produces the long
// interval stalls of the paper's Fig 2(a); reads below the memtables pay
// SSTable deserialization.
package novelsm

import (
	"fmt"
	"sync"
	"time"

	"miodb/internal/iterx"
	"miodb/internal/keys"
	"miodb/internal/kvstore"
	"miodb/internal/lsm"
	"miodb/internal/memtable"
	"miodb/internal/nvm"
	"miodb/internal/stats"
	"miodb/internal/vaddr"
	"miodb/internal/vfs"
	"miodb/internal/wal"
)

// Options configures the store.
type Options struct {
	// MemTableSize is the DRAM buffer capacity (paper: 64 MB → 64 KB).
	MemTableSize int64
	// NVMBufferSize is the big NVM memtable capacity (paper: 4 GB → 4 MB).
	NVMBufferSize int64
	// ChunkSize bounds the largest entry.
	ChunkSize int
	// NoSST selects the NoveLSM-NoSST variant: immutable DRAM memtables
	// drain into one ever-growing NVM skip list and nothing is ever
	// serialized.
	NoSST bool
	// Hierarchical selects the paper's Figure 1(b) architecture: the NVM
	// memtable is a staging tier *below* DRAM — immutable DRAM memtables
	// drain into it entry by entry, and when it fills it is serialized to
	// L0 SSTables. The default (flat, Figure 1(c)) instead alternates the
	// active buffer between DRAM and NVM.
	Hierarchical bool
	// Disk hosts SSTables (nil: NVM-block profile).
	Disk *vfs.Disk
	// LSM tunes the on-disk tree.
	LSM lsm.Options
	// DisableWAL turns off logging for DRAM-buffered writes.
	DisableWAL bool
	// Simulate/TimeScale control latency injection.
	Simulate  bool
	TimeScale float64
}

func (o Options) withDefaults() Options {
	if o.MemTableSize <= 0 {
		o.MemTableSize = 64 << 10
	}
	if o.NVMBufferSize <= 0 {
		o.NVMBufferSize = 4 << 20
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256 << 10
	}
	if o.ChunkSize < int(o.MemTableSize/4) {
		o.ChunkSize = int(o.MemTableSize)
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	return o
}

// buffer is one write buffer in the alternating pipeline.
type buffer struct {
	mt    *memtable.MemTable
	log   *wal.Log // nil for NVM-resident buffers (already persistent)
	isNVM bool
}

// DB is a flat-NoveLSM store.
type DB struct {
	opts  Options
	space *vaddr.Space
	dram  *nvm.Device
	nvm   *nvm.Device
	disk  *vfs.Disk
	lsm   *lsm.Levels // nil in NoSST mode
	st    *stats.Recorder

	writeMu sync.Mutex
	seq     uint64

	mu     sync.Mutex
	cond   *sync.Cond
	active *buffer
	queue  []*buffer          // immutable buffers, oldest first
	nvmBig *memtable.MemTable // NoSST: the single big NVM skip list
	closed bool

	wg sync.WaitGroup
}

// maxQueue bounds the immutable-buffer backlog before writers block.
const maxQueue = 2

// Open creates a store.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	space := vaddr.NewSpace()
	db := &DB{
		opts:  opts,
		space: space,
		dram:  nvm.NewDevice(space, nvm.DRAMProfile()),
		nvm:   nvm.NewDevice(space, nvm.NVMProfile()),
		st:    &stats.Recorder{},
	}
	db.cond = sync.NewCond(&db.mu)
	db.dram.SetSimulation(opts.Simulate)
	db.nvm.SetSimulation(opts.Simulate)
	db.dram.SetTimeScale(opts.TimeScale)
	db.nvm.SetTimeScale(opts.TimeScale)

	if opts.NoSST {
		big, err := memtable.New(db.nvm, 1<<40, opts.ChunkSize)
		if err != nil {
			return nil, err
		}
		db.nvmBig = big
	} else if opts.Hierarchical {
		big, err := memtable.New(db.nvm, opts.NVMBufferSize, opts.ChunkSize)
		if err != nil {
			return nil, err
		}
		db.nvmBig = big
	}
	if !opts.NoSST {
		db.disk = opts.Disk
		if db.disk == nil {
			db.disk = vfs.NewDisk(vfs.NVMBlockProfile())
		}
		db.disk.SetSimulation(opts.Simulate)
		db.disk.SetTimeScale(opts.TimeScale)
		lo := opts.LSM
		lo.Disk = db.disk
		lo.Stats = db.st
		db.lsm = lsm.New(lo)
	}

	active, err := db.newDRAMBuffer()
	if err != nil {
		return nil, err
	}
	db.active = active

	db.wg.Add(1)
	go db.flushLoop()
	return db, nil
}

func (db *DB) newDRAMBuffer() (*buffer, error) {
	mt, err := memtable.New(db.dram, db.opts.MemTableSize, db.opts.ChunkSize)
	if err != nil {
		return nil, err
	}
	b := &buffer{mt: mt}
	if !db.opts.DisableWAL {
		b.log = wal.New(db.nvm, db.opts.ChunkSize)
	}
	return b, nil
}

func (db *DB) newNVMBuffer() (*buffer, error) {
	mt, err := memtable.New(db.nvm, db.opts.NVMBufferSize, db.opts.ChunkSize)
	if err != nil {
		return nil, err
	}
	return &buffer{mt: mt, isNVM: true}, nil
}

// Put stores a key-value pair.
func (db *DB) Put(key, value []byte) error { return db.write(key, value, keys.KindSet) }

// Delete writes a tombstone.
func (db *DB) Delete(key []byte) error { return db.write(key, nil, keys.KindDelete) }

func (db *DB) write(key, value []byte, kind keys.Kind) error {
	if len(key) == 0 {
		return fmt.Errorf("novelsm: empty key")
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return kvstore.ErrClosed
		}
		active := db.active
		if !active.mt.Full() {
			db.seq++
			seq := db.seq
			db.mu.Unlock()
			if active.log != nil {
				if err := active.log.Append(key, value, seq, kind); err != nil {
					return err
				}
			}
			if err := active.mt.Add(key, value, seq, kind); err != nil {
				return err
			}
			db.st.AddUserBytesAndCount(int64(len(key)+len(value)), kind == keys.KindDelete)
			return nil
		}
		// Rotate the full active buffer.
		if db.opts.NoSST || db.opts.Hierarchical {
			// These variants keep only DRAM write buffers; immutables
			// drain into the big NVM list.
			if len(db.queue) >= maxQueue {
				db.stallLocked()
				continue
			}
			fresh, err := db.newDRAMBuffer()
			if err != nil {
				db.mu.Unlock()
				return err
			}
			db.queue = append(db.queue, active)
			db.active = fresh
			db.cond.Broadcast()
			db.mu.Unlock()
			continue
		}
		if len(db.queue) >= maxQueue {
			// Both buffers ahead are still flushing — the long interval
			// stall NoveLSM suffers when the big NVM memtable drains.
			db.stallLocked()
			continue
		}
		var fresh *buffer
		var err error
		if active.isNVM {
			fresh, err = db.newDRAMBuffer() // return to DRAM
		} else {
			fresh, err = db.newNVMBuffer() // overflow into NVM, in place
		}
		if err != nil {
			db.mu.Unlock()
			return err
		}
		db.queue = append(db.queue, active)
		db.active = fresh
		db.cond.Broadcast()
		db.mu.Unlock()
	}
}

// stallLocked blocks the writer until the flush queue shortens, recording
// the interval stall. Called with db.mu held; returns with it released.
func (db *DB) stallLocked() {
	start := time.Now()
	for len(db.queue) >= maxQueue && !db.closed {
		db.cond.Wait()
	}
	db.st.AddIntervalStall(time.Since(start))
	db.mu.Unlock()
}

// flushLoop retires immutable buffers oldest-first: serialization into L0
// SSTables (throttled by L0 pressure), or — in the NoSST variant —
// entry-by-entry drains into the big NVM skip list, the costly one-by-one
// merge the MioDB paper's §4.1 analysis counts.
func (db *DB) flushLoop() {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for len(db.queue) == 0 && !db.closed {
			db.cond.Wait()
		}
		if len(db.queue) == 0 && db.closed {
			db.mu.Unlock()
			return
		}
		b := db.queue[0]
		db.mu.Unlock()

		if db.opts.NoSST || db.opts.Hierarchical {
			// The costly one-by-one merge into the big persistent skip
			// list (§4.1's log(N) probes + memcpy per KV).
			start := time.Now()
			it := b.mt.NewIterator()
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if err := db.nvmBig.Add(it.Key(), it.Value(), it.Seq(), it.Kind()); err != nil {
					panic(err)
				}
			}
			db.st.AddFlush(time.Since(start), b.mt.ApproximateBytes())
			if db.opts.Hierarchical && db.nvmBig.Full() {
				db.spillHierarchical()
			}
		} else {
			// Throttle against L0 like LevelDB; the backlog this creates
			// is what stalls the writer above.
			for {
				sleep, block := db.lsm.WriteDelay()
				if block {
					d := db.lsm.WaitL0BelowStop()
					db.st.AddCumulativeStall(d)
					continue
				}
				if sleep > 0 {
					time.Sleep(sleep)
					db.st.AddCumulativeStall(sleep)
				}
				break
			}
			start := time.Now()
			maxBytes := int64(1) << 62
			if b.isNVM {
				// The big NVM memtable spills as multiple SSTables.
				maxBytes = db.lsm.Options().TableSize
			}
			if err := db.lsm.FlushToL0Sized(b.mt.NewIterator(), maxBytes); err != nil {
				panic(err)
			}
			db.st.AddFlush(time.Since(start), b.mt.ApproximateBytes())
		}

		db.mu.Lock()
		db.queue = db.queue[1:]
		db.cond.Broadcast()
		db.mu.Unlock()

		b.mt.Release()
		if b.log != nil {
			b.log.Release()
		}
	}
}

// spillHierarchical serializes the full NVM staging memtable into L0
// SSTables and replaces it with a fresh one — the hierarchical
// architecture's big, blocking flush ("when the large NVM-based MemTable
// is flushed into SSD, the KV store still suffers from
// serialization/deserialization costs", §2.3). It runs on the drain
// goroutine, so DRAM flushes back up behind it, which is exactly the
// stall cascade the paper attributes to this design.
func (db *DB) spillHierarchical() {
	old := db.nvmBig
	for {
		sleep, block := db.lsm.WriteDelay()
		if block {
			d := db.lsm.WaitL0BelowStop()
			db.st.AddCumulativeStall(d)
			continue
		}
		if sleep > 0 {
			time.Sleep(sleep)
			db.st.AddCumulativeStall(sleep)
		}
		break
	}
	start := time.Now()
	if err := db.lsm.FlushToL0Sized(old.NewIterator(), db.lsm.Options().TableSize); err != nil {
		panic(err)
	}
	db.st.AddFlush(time.Since(start), old.ApproximateBytes())

	fresh, err := memtable.New(db.nvm, db.opts.NVMBufferSize, db.opts.ChunkSize)
	if err != nil {
		panic(err)
	}
	db.mu.Lock()
	db.nvmBig = fresh
	db.cond.Broadcast()
	db.mu.Unlock()
	old.Release()
}

// Get returns the newest live value for key: active buffer, immutable
// queue newest-first, the NVM staging list, then the SSTable tree.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.st.CountGet()
	db.mu.Lock()
	active := db.active
	queue := append([]*buffer(nil), db.queue...)
	nvmBig := db.nvmBig
	db.mu.Unlock()

	if v, _, kind, ok := active.mt.Get(key); ok {
		return finishGet(v, kind)
	}
	for i := len(queue) - 1; i >= 0; i-- { // newest first
		if v, _, kind, ok := queue[i].mt.Get(key); ok {
			return finishGet(v, kind)
		}
	}
	if nvmBig != nil {
		if v, _, kind, ok := nvmBig.Get(key); ok {
			return finishGet(v, kind)
		}
	}
	if db.lsm != nil {
		if v, _, kind, ok := db.lsm.Get(key); ok {
			return finishGet(v, kind)
		}
	}
	return nil, kvstore.ErrNotFound
}

func finishGet(v []byte, kind keys.Kind) ([]byte, error) {
	if kind == keys.KindDelete {
		return nil, kvstore.ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Scan walks live keys ≥ start in order.
func (db *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	db.st.CountScan()
	db.mu.Lock()
	sources := []iterx.Iterator{db.active.mt.NewIterator()}
	for _, b := range db.queue {
		sources = append(sources, b.mt.NewIterator())
	}
	nvmBig := db.nvmBig
	db.mu.Unlock()
	if nvmBig != nil {
		sources = append(sources, nvmBig.NewIterator())
	}
	if db.lsm != nil {
		sources = append(sources, db.lsm.Iterators()...)
	}
	it := iterx.NewVisible(iterx.NewMerging(sources...))
	n := 0
	for it.Seek(start); it.Valid(); it.Next() {
		if limit > 0 && n >= limit {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		n++
	}
	return nil
}

// Flush drains the immutable queue and background compactions. The active
// buffer stays resident (NoveLSM keeps its memtables in memory).
func (db *DB) Flush() error {
	db.mu.Lock()
	for len(db.queue) > 0 && !db.closed {
		db.cond.Wait()
	}
	db.mu.Unlock()
	if db.lsm != nil {
		db.lsm.WaitIdle()
	}
	return nil
}

// Stats returns cost accounting with device traffic attached.
func (db *DB) Stats() stats.Snapshot {
	s := db.st.Snapshot()
	nc := db.nvm.Counters()
	devs := []stats.DeviceCounters{
		{Name: nc.Name, BytesRead: nc.BytesRead, BytesWritten: nc.BytesWritten},
	}
	if db.disk != nil {
		dc := db.disk.Counters()
		devs = append(devs, stats.DeviceCounters{Name: dc.Name, BytesRead: dc.BytesRead, BytesWritten: dc.BytesWritten})
	}
	s.AttachDevices(devs...)
	return s
}

// ResetCounters clears device and cost counters between bench phases.
func (db *DB) ResetCounters() {
	db.dram.ResetCounters()
	db.nvm.ResetCounters()
	if db.disk != nil {
		db.disk.ResetCounters()
	}
	db.st.Reset()
}

// Close shuts the store down.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.wg.Wait()
	if db.lsm != nil {
		db.lsm.Close()
	}
	return nil
}

var _ kvstore.Store = (*DB)(nil)
