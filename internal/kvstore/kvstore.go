// Package kvstore defines the store interface shared by MioDB and the
// three baselines (LevelDB-style, NoveLSM, MatrixKV), so the benchmark
// harness drives all four identically, and the sentinel errors they share.
package kvstore

import (
	"errors"

	"miodb/internal/stats"
)

// ErrNotFound is returned by Get when a key has no live value.
var ErrNotFound = errors.New("kvstore: not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: closed")

// ErrDegraded wraps the first background failure once a store has latched
// itself read-only. The message keeps the engine's historical wording so
// it round-trips the network protocol's error payloads unchanged.
var ErrDegraded = errors.New("miodb: store degraded to read-only after background error")

// ErrSnapshotUnsupported is returned by snapshot capture on stores that
// cannot pin long-lived consistent views (SSD-mode stores).
var ErrSnapshotUnsupported = errors.New("miodb: snapshots are not supported on SSD-mode stores")

// ErrValueLogCorrupt reports a value-log pointer that failed to resolve:
// an unknown segment, an out-of-bounds address, or a checksum mismatch —
// an invariant violation, not an expected runtime condition.
var ErrValueLogCorrupt = errors.New("vlog: value log corrupt")

// BatchOp is one operation inside a client batch: a put, a delete when
// Delete is set (Value is ignored), or a range delete when RangeDelete is
// set — then Key is the inclusive start and Value the exclusive end of
// the range (empty end = unbounded).
type BatchOp struct {
	Key, Value  []byte
	Delete      bool
	RangeDelete bool
}

// BatchWriter is implemented by stores that can apply a whole batch of
// operations in one commit (one WAL append, consecutive sequence
// numbers). The network server and harness feed multi-op requests
// through it when available and fall back to per-op Puts otherwise.
type BatchWriter interface {
	WriteBatch(ops []BatchOp) error
}

// RangeDeleter is implemented by stores that support O(1) logical range
// deletion: every key k with start ≤ k < end (end empty = unbounded) is
// deleted in one operation.
type RangeDeleter interface {
	DeleteRange(start, end []byte) error
}

// MultiGetter is implemented by stores that answer several point lookups
// in one mutually-consistent operation. Results are positional: values[i]
// and errs[i] answer keys[i] (ErrNotFound per missing key).
type MultiGetter interface {
	GetMulti(keys [][]byte) ([][]byte, []error)
}

// SnapshotView is a long-lived consistent read-only view of a store:
// every read answers exactly as of capture time, no matter how many
// writes happen afterwards. Callers must Close the view to let the
// store reclaim superseded memory.
type SnapshotView interface {
	// Get returns the value key had at capture, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// GetMulti reads several keys from the cut, positionally; all
	// answers are mutually consistent.
	GetMulti(keys [][]byte) ([][]byte, []error)
	// Scan calls fn for up to limit keys ≥ start as of capture, in
	// order; fn returning false stops early. limit ≤ 0 means no limit.
	Scan(start []byte, limit int, fn func(key, value []byte) bool) error
	// Close releases the view. Idempotent.
	Close() error
}

// Snapshotter is implemented by stores that can capture consistent
// point-in-time views. The network server exposes it as the SNAP family
// of protocol ops.
type Snapshotter interface {
	SnapshotView() (SnapshotView, error)
}

// ValueLogger is implemented by stores with key-value separation: large
// values live in a segmented value log and the LSM structure stores
// compact addresses in their place. Tools probe for it to detect
// value-log-capable stores and refuse descriptively otherwise.
type ValueLogger interface {
	// ValueLogEnabled reports whether separation is active (a store may
	// implement the interface with separation configured off).
	ValueLogEnabled() bool
	// RunValueLogGC reclaims eligible value-log segments until none
	// qualifies and returns the number of segments reclaimed.
	RunValueLogGC() (int, error)
}

// Store is the uniform surface the benchmark harness drives.
type Store interface {
	// Put stores a key-value pair.
	Put(key, value []byte) error
	// Get returns the newest live value or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Delete removes a key.
	Delete(key []byte) error
	// Scan calls fn for up to limit live keys ≥ start in order; fn
	// returning false stops early. limit ≤ 0 means unbounded.
	Scan(start []byte, limit int, fn func(key, value []byte) bool) error
	// Flush forces buffered data out and drains background work.
	Flush() error
	// Stats returns cost accounting with device traffic attached.
	Stats() stats.Snapshot
	// Close shuts the store down.
	Close() error
}
