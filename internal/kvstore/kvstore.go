// Package kvstore defines the store interface shared by MioDB and the
// three baselines (LevelDB-style, NoveLSM, MatrixKV), so the benchmark
// harness drives all four identically, and the sentinel errors they share.
package kvstore

import (
	"errors"

	"miodb/internal/stats"
)

// ErrNotFound is returned by Get when a key has no live value.
var ErrNotFound = errors.New("kvstore: not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: closed")

// BatchOp is one operation inside a client batch: a put, or a delete
// when Delete is set (Value is ignored for deletes).
type BatchOp struct {
	Key, Value []byte
	Delete     bool
}

// BatchWriter is implemented by stores that can apply a whole batch of
// operations in one commit (one WAL append, consecutive sequence
// numbers). The network server and harness feed multi-op requests
// through it when available and fall back to per-op Puts otherwise.
type BatchWriter interface {
	WriteBatch(ops []BatchOp) error
}

// Store is the uniform surface the benchmark harness drives.
type Store interface {
	// Put stores a key-value pair.
	Put(key, value []byte) error
	// Get returns the newest live value or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Delete removes a key.
	Delete(key []byte) error
	// Scan calls fn for up to limit live keys ≥ start in order; fn
	// returning false stops early. limit ≤ 0 means unbounded.
	Scan(start []byte, limit int, fn func(key, value []byte) bool) error
	// Flush forces buffered data out and drains background work.
	Flush() error
	// Stats returns cost accounting with device traffic attached.
	Stats() stats.Snapshot
	// Close shuts the store down.
	Close() error
}
