package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		aKey string
		aSeq uint64
		bKey string
		bSeq uint64
		want int
	}{
		{"a", 1, "b", 1, -1},
		{"b", 1, "a", 1, +1},
		{"a", 5, "a", 3, -1}, // newer first
		{"a", 3, "a", 5, +1},
		{"a", 5, "a", 5, 0},
		{"", 0, "", 0, 0},
		{"abc", 1, "abcd", 1, -1},
	}
	for _, c := range cases {
		got := Compare([]byte(c.aKey), c.aSeq, []byte(c.bKey), c.bSeq)
		if got != c.want {
			t.Errorf("Compare(%q,%d, %q,%d) = %d, want %d", c.aKey, c.aSeq, c.bKey, c.bSeq, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(ak, bk []byte, as, bs uint64) bool {
		as &= MaxSeq
		bs &= MaxSeq
		return Compare(ak, as, bk, bs) == -Compare(bk, bs, ak, as)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitive(t *testing.T) {
	type entry struct {
		K []byte
		S uint64
	}
	f := func(a, b, c entry) bool {
		a.S &= MaxSeq
		b.S &= MaxSeq
		c.S &= MaxSeq
		ab := Compare(a.K, a.S, b.K, b.S)
		bc := Compare(b.K, b.S, c.K, c.S)
		ac := Compare(a.K, a.S, c.K, c.S)
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		if ab >= 0 && bc >= 0 && ac < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrailerRoundTrip(t *testing.T) {
	f := func(seq uint64, kindBit bool) bool {
		seq &= MaxSeq
		kind := KindDelete
		if kindBit {
			kind = KindSet
		}
		s, k := UnpackTrailer(Trailer(seq, kind))
		return s == seq && k == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecode(t *testing.T) {
	f := func(key []byte, seq uint64, kindBit bool) bool {
		seq &= MaxSeq
		kind := KindDelete
		if kindBit {
			kind = KindSet
		}
		enc := Encode(nil, key, seq, kind)
		k, s, kd, ok := Decode(enc)
		return ok && bytes.Equal(k, key) && s == seq && kd == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	for _, in := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, 7)} {
		if _, _, _, ok := Decode(in); ok {
			t.Errorf("Decode(%d bytes) should fail", len(in))
		}
	}
	// Exactly 8 bytes decodes to the empty key.
	k, _, _, ok := Decode(make([]byte, 8))
	if !ok || len(k) != 0 {
		t.Error("Decode of 8-byte input should yield empty key")
	}
}

func TestCompareInternalMatchesCompare(t *testing.T) {
	f := func(ak, bk []byte, as, bs uint64) bool {
		as &= MaxSeq
		bs &= MaxSeq
		ea := Encode(nil, ak, as, KindSet)
		eb := Encode(nil, bk, bs, KindSet)
		return CompareInternal(ea, eb) == Compare(ak, as, bk, bs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
