// Package keys defines the internal-key model shared by every store in the
// repository: MioDB's PMTables, the baselines' memtables and SSTables.
//
// A logical entry is (user key, sequence number, kind). Entries order by
// user key ascending, then sequence number descending, so that the newest
// version of a key is encountered first during any ordered traversal —
// the invariant the paper's zero-copy compaction (§4.3) relies on ("data
// nodes with the same Key are sorted by the Seq in a descending order").
package keys

import (
	"bytes"
	"encoding/binary"
)

// Kind tags an entry as a value write or a deletion tombstone.
type Kind uint8

const (
	// KindDelete marks a tombstone.
	KindDelete Kind = 0
	// KindSet marks a regular key-value write.
	KindSet Kind = 1
	// KindRangeDelete marks a range tombstone: the entry's key is the
	// inclusive start of the deleted range and its value is the exclusive
	// end (empty value = unbounded). A range tombstone at sequence t kills
	// every entry (k, s) with start ≤ k < end and s < t. Range tombstones
	// ride the WAL and batch formats like point writes but are never
	// inserted into skip lists; the engine keeps them in a small per-version
	// side table (see core/rangedel.go).
	KindRangeDelete Kind = 2
	// KindValuePtr marks a key-value write whose value bytes live in the
	// value log (key-value separation, core's vlog integration): the
	// entry's value is a 16-byte vlog.Addr instead of the bytes. Pointer
	// entries flow through WAL, memtables, PMTables, merges, and
	// iterators exactly like KindSet; only the final read resolves the
	// indirection.
	KindValuePtr Kind = 3
)

// MaxSeq is the largest representable sequence number (56 bits, as in
// LevelDB's packed format).
const MaxSeq = uint64(1)<<56 - 1

// Compare orders (aKey, aSeq) against (bKey, bSeq): user key ascending,
// sequence descending. It returns -1, 0, or +1.
func Compare(aKey []byte, aSeq uint64, bKey []byte, bSeq uint64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aSeq > bSeq:
		return -1 // newer sorts first
	case aSeq < bSeq:
		return +1
	default:
		return 0
	}
}

// Trailer packs (seq, kind) into the 8-byte internal-key trailer used by
// the SSTable format.
func Trailer(seq uint64, kind Kind) uint64 {
	return seq<<8 | uint64(kind)
}

// UnpackTrailer splits a trailer into sequence number and kind.
func UnpackTrailer(t uint64) (seq uint64, kind Kind) {
	return t >> 8, Kind(t & 0xff)
}

// Encode appends the internal encoding of (key, seq, kind) to dst:
// user key bytes followed by the little-endian 8-byte trailer.
func Encode(dst, key []byte, seq uint64, kind Kind) []byte {
	dst = append(dst, key...)
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], Trailer(seq, kind))
	return append(dst, t[:]...)
}

// Decode splits an encoded internal key into its parts. It returns ok=false
// for malformed input (shorter than the trailer).
func Decode(ikey []byte) (key []byte, seq uint64, kind Kind, ok bool) {
	if len(ikey) < 8 {
		return nil, 0, 0, false
	}
	n := len(ikey) - 8
	t := binary.LittleEndian.Uint64(ikey[n:])
	seq, kind = UnpackTrailer(t)
	return ikey[:n], seq, kind, true
}

// CompareInternal orders two encoded internal keys with the same rule as
// Compare. Malformed keys order by raw bytes.
func CompareInternal(a, b []byte) int {
	ak, as, _, aok := Decode(a)
	bk, bs, _, bok := Decode(b)
	if !aok || !bok {
		return bytes.Compare(a, b)
	}
	return Compare(ak, as, bk, bs)
}
