// Package ycsb implements the Yahoo! Cloud Serving Benchmark workload
// model (Cooper et al., SoCC'10) used in the paper's §5.2: key choosers
// (zipfian, latest, uniform), the standard workload mixes A–F, and the
// load phase. The zipfian generator is the Gray et al. "quickly generating
// billion-record synthetic databases" algorithm, as in the official YCSB.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws integers in [0, n) with a zipfian distribution; item 0 is
// the most popular. The paper runs YCSB with 0.99 skew.
type Zipfian struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
	rnd          *rand.Rand
}

// NewZipfian creates a generator over [0, n) with the given skew theta
// (YCSB default 0.99).
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	z := &Zipfian{
		n:     n,
		theta: theta,
		rnd:   rand.New(rand.NewSource(seed)),
	}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Exact summation is O(n); for large n use the standard approximation
	// by integrating 1/x^theta (adequate for workload generation).
	if n <= 1<<16 {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	base := zeta(1<<16, theta)
	// ∫ x^-θ dx from 2^16 to n
	return base + (math.Pow(float64(n), 1-theta)-math.Pow(float64(uint64(1)<<16), 1-theta))/(1-theta)
}

// Next draws the next item.
func (z *Zipfian) Next() uint64 {
	u := z.rnd.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Chooser selects keys for operations.
type Chooser interface {
	// Choose returns a key index given the number of loaded records.
	Choose(recordCount uint64) uint64
}

// ZipfianChooser wraps Zipfian with the YCSB hash-scramble so hot keys
// spread over the keyspace.
type ZipfianChooser struct{ z *Zipfian }

// NewZipfianChooser builds the paper's default chooser (0.99 skew).
func NewZipfianChooser(n uint64, seed int64) *ZipfianChooser {
	return &ZipfianChooser{z: NewZipfian(n, 0.99, seed)}
}

// Choose implements Chooser.
func (c *ZipfianChooser) Choose(recordCount uint64) uint64 {
	v := c.z.Next()
	return fnvHash64(v) % recordCount
}

// LatestChooser skews toward recently inserted records (workload D).
type LatestChooser struct{ z *Zipfian }

// NewLatestChooser builds a latest-distribution chooser.
func NewLatestChooser(n uint64, seed int64) *LatestChooser {
	return &LatestChooser{z: NewZipfian(n, 0.99, seed)}
}

// Choose implements Chooser: offsets from the newest record.
func (c *LatestChooser) Choose(recordCount uint64) uint64 {
	off := c.z.Next() % recordCount
	return recordCount - 1 - off
}

// UniformChooser draws uniformly.
type UniformChooser struct{ rnd *rand.Rand }

// NewUniformChooser builds a uniform chooser.
func NewUniformChooser(seed int64) *UniformChooser {
	return &UniformChooser{rnd: rand.New(rand.NewSource(seed))}
}

// Choose implements Chooser.
func (c *UniformChooser) Choose(recordCount uint64) uint64 {
	return uint64(c.rnd.Int63()) % recordCount
}

func fnvHash64(v uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// OpKind is one YCSB operation type.
type OpKind int

// Operation kinds drawn by the workload mixes.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
	// OpMultiRead reads a group of keys in one logical operation (the
	// "assemble a page of records" shape MGET serves); KeyIdxs carries
	// the group.
	OpMultiRead
)

// Workload is a YCSB operation mix over a chooser.
type Workload struct {
	// Name is the YCSB letter (A–F) or "load".
	Name string
	// ReadProp..MultiReadProp are the operation proportions (sum to 1).
	ReadProp, UpdateProp, InsertProp, ScanProp, RMWProp, MultiReadProp float64
	// Chooser picks keys (zipfian unless stated).
	Chooser Chooser
	// MaxScanLen bounds scan lengths (YCSB default 100).
	MaxScanLen int
	// MultiGetSize is the keys per OpMultiRead group (default 8).
	MultiGetSize int
}

// StandardWorkload returns workload A–F as the paper describes them:
// A 50/50 read/update; B 95/5; C read-only; D 95/5 read/insert with the
// latest distribution; E 95/5 scan/insert; F 50/50 read/RMW. All zipfian
// (99% skewness) except D. The extra letter M is this reproduction's
// multi-get mix: 95% multi-reads of 8 zipfian keys (one GetMulti per
// operation on stores that support it) and 5% updates.
func StandardWorkload(letter string, keyspace uint64, seed int64) (*Workload, error) {
	w := &Workload{Name: letter, MaxScanLen: 100}
	switch letter {
	case "A", "a":
		w.ReadProp, w.UpdateProp = 0.5, 0.5
	case "B", "b":
		w.ReadProp, w.UpdateProp = 0.95, 0.05
	case "C", "c":
		w.ReadProp = 1.0
	case "D", "d":
		w.ReadProp, w.InsertProp = 0.95, 0.05
		w.Chooser = NewLatestChooser(keyspace, seed)
	case "E", "e":
		w.ScanProp, w.InsertProp = 0.95, 0.05
	case "F", "f":
		w.ReadProp, w.RMWProp = 0.5, 0.5
	case "M", "m":
		w.MultiReadProp, w.UpdateProp = 0.95, 0.05
		w.MultiGetSize = 8
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %q", letter)
	}
	if w.Chooser == nil {
		w.Chooser = NewZipfianChooser(keyspace, seed)
	}
	return w, nil
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	KeyIdx  uint64
	ScanLen int
	// KeyIdxs is the group an OpMultiRead answers (nil otherwise).
	KeyIdxs []uint64
}

// Generator draws operations from a workload.
type Generator struct {
	w           *Workload
	rnd         *rand.Rand
	recordCount uint64
}

// NewGenerator builds a generator; recordCount is the loaded record count
// (inserts grow it).
func NewGenerator(w *Workload, recordCount uint64, seed int64) *Generator {
	return &Generator{w: w, rnd: rand.New(rand.NewSource(seed)), recordCount: recordCount}
}

// RecordCount returns the current record count including inserts.
func (g *Generator) RecordCount() uint64 { return g.recordCount }

// Next draws the next operation.
func (g *Generator) Next() Op {
	p := g.rnd.Float64()
	w := g.w
	switch {
	case p < w.ReadProp:
		return Op{Kind: OpRead, KeyIdx: g.w.Chooser.Choose(g.recordCount)}
	case p < w.ReadProp+w.UpdateProp:
		return Op{Kind: OpUpdate, KeyIdx: g.w.Chooser.Choose(g.recordCount)}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp:
		idx := g.recordCount
		g.recordCount++
		return Op{Kind: OpInsert, KeyIdx: idx}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		return Op{
			Kind:    OpScan,
			KeyIdx:  g.w.Chooser.Choose(g.recordCount),
			ScanLen: 1 + g.rnd.Intn(w.MaxScanLen),
		}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp+w.MultiReadProp:
		size := w.MultiGetSize
		if size <= 0 {
			size = 8
		}
		idxs := make([]uint64, size)
		for i := range idxs {
			idxs[i] = g.w.Chooser.Choose(g.recordCount)
		}
		return Op{Kind: OpMultiRead, KeyIdxs: idxs}
	default:
		return Op{Kind: OpReadModifyWrite, KeyIdx: g.w.Chooser.Choose(g.recordCount)}
	}
}

// Key renders a record index as a YCSB-style key ("user" + zero-padded
// hash-ordered index).
func Key(idx uint64) []byte {
	return []byte(fmt.Sprintf("user%016d", idx))
}

// Value builds a deterministic value of the given size for a record; a
// generation counter makes successive updates distinguishable.
func Value(idx uint64, gen int, size int) []byte {
	v := make([]byte, size)
	pattern := fmt.Sprintf("v-%d-%d-", idx, gen)
	for i := 0; i < size; {
		i += copy(v[i:], pattern)
	}
	return v
}
