package ycsb

import (
	"math"
	"testing"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(1000, 0.99, 1)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Next() = %d out of range", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 10000
	z := NewZipfian(n, 0.99, 2)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Item 0 must dominate; the head (top 1%) should hold a large share.
	if counts[0] < counts[n/2]*10 {
		t.Errorf("item 0 drawn %d times, item %d drawn %d — not skewed", counts[0], n/2, counts[n/2])
	}
	head := 0
	for i := 0; i < n/100; i++ {
		head += counts[i]
	}
	if share := float64(head) / draws; share < 0.4 {
		t.Errorf("top 1%% of items got %.1f%% of draws, expected zipfian concentration", share*100)
	}
}

func TestChoosersInRange(t *testing.T) {
	const records = 5000
	choosers := []Chooser{
		NewZipfianChooser(records, 1),
		NewLatestChooser(records, 2),
		NewUniformChooser(3),
	}
	for ci, c := range choosers {
		for i := 0; i < 50000; i++ {
			if v := c.Choose(records); v >= records {
				t.Fatalf("chooser %d returned %d out of range", ci, v)
			}
		}
	}
}

func TestLatestSkewsToNewest(t *testing.T) {
	const records = 10000
	c := NewLatestChooser(records, 4)
	newest := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if c.Choose(records) >= records-records/100 {
			newest++
		}
	}
	if share := float64(newest) / draws; share < 0.4 {
		t.Errorf("latest distribution gave newest 1%% only %.1f%% of draws", share*100)
	}
}

func TestStandardWorkloadMixes(t *testing.T) {
	cases := map[string]struct {
		read, update, insert, scan, rmw float64
	}{
		"A": {read: 0.5, update: 0.5},
		"B": {read: 0.95, update: 0.05},
		"C": {read: 1.0},
		"D": {read: 0.95, insert: 0.05},
		"E": {scan: 0.95, insert: 0.05},
		"F": {read: 0.5, rmw: 0.5},
	}
	for letter, want := range cases {
		w, err := StandardWorkload(letter, 10000, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGenerator(w, 10000, 7)
		counts := map[OpKind]int{}
		const draws = 100000
		for i := 0; i < draws; i++ {
			op := g.Next()
			counts[op.Kind]++
			if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
				t.Fatalf("%s: scan length %d", letter, op.ScanLen)
			}
		}
		check := func(kind OpKind, want float64, name string) {
			got := float64(counts[kind]) / draws
			if math.Abs(got-want) > 0.01 {
				t.Errorf("%s: %s proportion %.3f, want %.2f", letter, name, got, want)
			}
		}
		check(OpRead, want.read, "read")
		check(OpUpdate, want.update, "update")
		check(OpInsert, want.insert, "insert")
		check(OpScan, want.scan, "scan")
		check(OpReadModifyWrite, want.rmw, "rmw")
	}
	if _, err := StandardWorkload("Z", 10, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestInsertsGrowKeyspace(t *testing.T) {
	w, _ := StandardWorkload("D", 1000, 1)
	g := NewGenerator(w, 1000, 9)
	start := g.RecordCount()
	inserts := 0
	for i := 0; i < 10000; i++ {
		if g.Next().Kind == OpInsert {
			inserts++
		}
	}
	if g.RecordCount() != start+uint64(inserts) {
		t.Errorf("record count %d, want %d", g.RecordCount(), start+uint64(inserts))
	}
}

func TestKeyValueHelpers(t *testing.T) {
	k := Key(42)
	if string(k) != "user0000000000000042" {
		t.Errorf("Key(42) = %s", k)
	}
	v := Value(42, 3, 100)
	if len(v) != 100 {
		t.Errorf("Value length %d", len(v))
	}
	if string(Value(42, 3, 100)) != string(v) {
		t.Error("Value not deterministic")
	}
	if string(Value(42, 4, 100)) == string(v) {
		t.Error("Value ignores generation")
	}
}
