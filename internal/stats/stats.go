// Package stats defines the cost accounting shared by every store in the
// repository: the quantities the paper's Table 1 reports (interval stalls,
// cumulative stalls, deserialization time, flushing time, write
// amplification) plus general throughput counters.
package stats

import (
	"sync/atomic"
	"time"
)

// Recorder accumulates cost metrics. All methods are safe for concurrent
// use; stores share one Recorder across their foreground and background
// goroutines.
type Recorder struct {
	// Interval stalls: time the write path was fully blocked waiting for
	// a flush or compaction (the client-visible stall, §3.1).
	intervalStallNs atomic.Int64
	intervalStalls  atomic.Int64
	// Cumulative stalls: the sum of intentional short write delays
	// injected to slow writers down (L0 slowdown throttling).
	cumulativeStallNs atomic.Int64
	// Serialization: CPU+copy time converting memtables to on-"disk"
	// formats (SSTable builds, matrix rows).
	serializeNs atomic.Int64
	// Deserialization: time decoding on-"disk" formats on the read path.
	deserializeNs atomic.Int64
	// Flushing: wall time of memtable flushes, and flush volume.
	flushNs    atomic.Int64
	flushBytes atomic.Int64
	flushes    atomic.Int64
	// Compaction work time across all background threads.
	compactionNs atomic.Int64
	compactions  atomic.Int64
	// User-written payload bytes (key+value), the denominator of WA.
	userBytes atomic.Int64
	// Operation counts.
	puts, gets, deletes, scans atomic.Int64
}

// AddIntervalStall records a full write-path block of duration d.
func (r *Recorder) AddIntervalStall(d time.Duration) {
	r.intervalStallNs.Add(int64(d))
	r.intervalStalls.Add(1)
}

// AddCumulativeStall records an intentional write slowdown of duration d.
func (r *Recorder) AddCumulativeStall(d time.Duration) {
	r.cumulativeStallNs.Add(int64(d))
}

// AddSerialize records serialization work time.
func (r *Recorder) AddSerialize(d time.Duration) { r.serializeNs.Add(int64(d)) }

// AddDeserialize records deserialization work time.
func (r *Recorder) AddDeserialize(d time.Duration) { r.deserializeNs.Add(int64(d)) }

// AddFlush records one memtable flush of the given duration and volume.
func (r *Recorder) AddFlush(d time.Duration, bytes int64) {
	r.flushNs.Add(int64(d))
	r.flushBytes.Add(bytes)
	r.flushes.Add(1)
}

// AddCompaction records one compaction work unit.
func (r *Recorder) AddCompaction(d time.Duration) {
	r.compactionNs.Add(int64(d))
	r.compactions.Add(1)
}

// AddUserBytes accumulates user payload written (the WA denominator).
func (r *Recorder) AddUserBytes(n int64) { r.userBytes.Add(n) }

// AddUserBytesAndCount combines the user-byte charge with the put/delete
// tally for write paths.
func (r *Recorder) AddUserBytesAndCount(n int64, isDelete bool) {
	r.userBytes.Add(n)
	if isDelete {
		r.deletes.Add(1)
	} else {
		r.puts.Add(1)
	}
}

// CountPut tallies one write operation.
func (r *Recorder) CountPut() { r.puts.Add(1) }

// CountGet tallies one point lookup.
func (r *Recorder) CountGet() { r.gets.Add(1) }

// CountDelete tallies one delete.
func (r *Recorder) CountDelete() { r.deletes.Add(1) }

// CountScan tallies one range scan.
func (r *Recorder) CountScan() { r.scans.Add(1) }

// DeviceCounters mirrors a device's traffic in a snapshot.
type DeviceCounters struct {
	Name                    string
	BytesRead, BytesWritten int64
}

// Snapshot is a point-in-time copy of every metric, in the units the
// paper's tables use.
type Snapshot struct {
	IntervalStall    time.Duration
	IntervalStalls   int64
	CumulativeStall  time.Duration
	SerializeTime    time.Duration
	DeserializeTime  time.Duration
	FlushTime        time.Duration
	FlushBytes       int64
	Flushes          int64
	CompactionTime   time.Duration
	Compactions      int64
	UserBytesWritten int64
	Puts, Gets       int64
	Deletes, Scans   int64

	// Devices lists per-device traffic; WriteAmplification is total
	// persistent-device write traffic ÷ user bytes.
	Devices            []DeviceCounters
	WriteAmplification float64
}

// Snapshot captures the recorder. Device traffic and WA are attached by
// the store, which knows its devices.
func (r *Recorder) Snapshot() Snapshot {
	return Snapshot{
		IntervalStall:    time.Duration(r.intervalStallNs.Load()),
		IntervalStalls:   r.intervalStalls.Load(),
		CumulativeStall:  time.Duration(r.cumulativeStallNs.Load()),
		SerializeTime:    time.Duration(r.serializeNs.Load()),
		DeserializeTime:  time.Duration(r.deserializeNs.Load()),
		FlushTime:        time.Duration(r.flushNs.Load()),
		FlushBytes:       r.flushBytes.Load(),
		Flushes:          r.flushes.Load(),
		CompactionTime:   time.Duration(r.compactionNs.Load()),
		Compactions:      r.compactions.Load(),
		UserBytesWritten: r.userBytes.Load(),
		Puts:             r.puts.Load(),
		Gets:             r.gets.Load(),
		Deletes:          r.deletes.Load(),
		Scans:            r.scans.Load(),
	}
}

// AttachDevices fills the snapshot's device traffic and computes write
// amplification over the given persistent devices' write bytes.
func (s *Snapshot) AttachDevices(devs ...DeviceCounters) {
	s.Devices = append(s.Devices, devs...)
	var written int64
	for _, d := range devs {
		written += d.BytesWritten
	}
	if s.UserBytesWritten > 0 {
		s.WriteAmplification = float64(written) / float64(s.UserBytesWritten)
	}
}
