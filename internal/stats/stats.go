// Package stats defines the cost accounting shared by every store in the
// repository: the quantities the paper's Table 1 reports (interval stalls,
// cumulative stalls, deserialization time, flushing time, write
// amplification) plus general throughput counters.
package stats

import (
	"math/rand/v2"
	"sync/atomic"
	"time"

	"miodb/internal/histogram"
)

// Op identifies an operation type for per-op latency accounting.
type Op int

// The op types with their own latency distribution. OpCommit measures
// whole Write/WriteBatch commits (one sample per batch), while OpPut and
// OpDelete measure per-record commit latency — each record in a group
// commit experienced the group's latency, including queue wait.
const (
	OpPut Op = iota
	OpGet
	OpDelete
	OpScan
	OpCommit
	NumOps
)

// String names the op the way bench output and the server stats op do.
func (op Op) String() string {
	switch op {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpCommit:
		return "commit"
	}
	return "unknown"
}

// opStripes spreads each op's histogram over several mutexes so the
// lock-free read path does not re-acquire one global lock per Get just to
// record its latency (the same trick as core's epoch slots). Must be a
// power of two.
const opStripes = 4

// Recorder accumulates cost metrics. All methods are safe for concurrent
// use; stores share one Recorder across their foreground and background
// goroutines.
type Recorder struct {
	// Interval stalls: time the write path was fully blocked waiting for
	// a flush or compaction (the client-visible stall, §3.1).
	intervalStallNs atomic.Int64
	intervalStalls  atomic.Int64
	// Cumulative stalls: the sum of intentional short write delays
	// injected to slow writers down (L0 slowdown throttling).
	cumulativeStallNs atomic.Int64
	// Serialization: CPU+copy time converting memtables to on-"disk"
	// formats (SSTable builds, matrix rows).
	serializeNs atomic.Int64
	// Deserialization: time decoding on-"disk" formats on the read path.
	deserializeNs atomic.Int64
	// Flushing: wall time of memtable flushes, and flush volume.
	flushNs    atomic.Int64
	flushBytes atomic.Int64
	flushes    atomic.Int64
	// Compaction work time across all background threads.
	compactionNs atomic.Int64
	compactions  atomic.Int64
	// User-written payload bytes (key+value), the denominator of WA.
	userBytes atomic.Int64
	// Operation counts.
	puts, gets, deletes, scans atomic.Int64
	// Group commit: number of leader-committed write groups and the
	// records they carried. groupedWrites / writeGroups is the mean
	// coalescing factor; > 1 means concurrent writers actually shared
	// WAL appends.
	writeGroups   atomic.Int64
	groupedWrites atomic.Int64
	// Robustness: transparently retried transient device errors, and
	// background failures that latched the store into degraded mode.
	deviceRetries    atomic.Int64
	backgroundErrors atomic.Int64
	// Version reclamation: snapshots freed by the epoch (or refcount)
	// sweep — the lock-free read path's grace-period machinery at work.
	versionsSwept atomic.Int64
	// Memtable rotations: full DRAM buffers moved into the immutable
	// queue (makeRoomForWrite or a forced flush). Together with userBytes
	// and the flush counters this is the write-heat signal the memory
	// governor samples (see Heat).
	rotations atomic.Int64
	// Per-op-type service latency, striped to keep Record cheap on the
	// concurrent read path. Zero-value histograms, no constructor needed.
	opLat [NumOps][opStripes]histogram.Histogram
}

// RecordOp adds one latency sample for the given op type.
func (r *Recorder) RecordOp(op Op, d time.Duration) { r.RecordOpN(op, d, 1) }

// RecordOpN adds n samples of the same latency for op — the group-commit
// path charges every record in a batch with the batch's measured latency
// in one call.
func (r *Recorder) RecordOpN(op Op, d time.Duration, n int64) {
	if n <= 0 || op < 0 || op >= NumOps {
		return
	}
	r.opLat[op][rand.Uint32()&(opStripes-1)].RecordN(d, n)
}

// AddIntervalStall records a full write-path block of duration d.
func (r *Recorder) AddIntervalStall(d time.Duration) {
	r.intervalStallNs.Add(int64(d))
	r.intervalStalls.Add(1)
}

// AddCumulativeStall records an intentional write slowdown of duration d.
func (r *Recorder) AddCumulativeStall(d time.Duration) {
	r.cumulativeStallNs.Add(int64(d))
}

// AddSerialize records serialization work time.
func (r *Recorder) AddSerialize(d time.Duration) { r.serializeNs.Add(int64(d)) }

// AddDeserialize records deserialization work time.
func (r *Recorder) AddDeserialize(d time.Duration) { r.deserializeNs.Add(int64(d)) }

// AddFlush records one memtable flush of the given duration and volume.
func (r *Recorder) AddFlush(d time.Duration, bytes int64) {
	r.flushNs.Add(int64(d))
	r.flushBytes.Add(bytes)
	r.flushes.Add(1)
}

// AddCompaction records one compaction work unit.
func (r *Recorder) AddCompaction(d time.Duration) {
	r.compactionNs.Add(int64(d))
	r.compactions.Add(1)
}

// AddUserBytes accumulates user payload written (the WA denominator).
func (r *Recorder) AddUserBytes(n int64) { r.userBytes.Add(n) }

// AddUserBytesAndCount combines the user-byte charge with the put/delete
// tally for write paths.
func (r *Recorder) AddUserBytesAndCount(n int64, isDelete bool) {
	r.userBytes.Add(n)
	if isDelete {
		r.deletes.Add(1)
	} else {
		r.puts.Add(1)
	}
}

// CountPut tallies one write operation.
func (r *Recorder) CountPut() { r.puts.Add(1) }

// CountGet tallies one point lookup.
func (r *Recorder) CountGet() { r.gets.Add(1) }

// CountDelete tallies one delete.
func (r *Recorder) CountDelete() { r.deletes.Add(1) }

// CountScan tallies one range scan.
func (r *Recorder) CountScan() { r.scans.Add(1) }

// CountPuts tallies n write operations in one step (group commit).
func (r *Recorder) CountPuts(n int64) {
	if n != 0 {
		r.puts.Add(n)
	}
}

// CountDeletes tallies n deletes in one step (group commit).
func (r *Recorder) CountDeletes(n int64) {
	if n != 0 {
		r.deletes.Add(n)
	}
}

// AddWriteGroup records one group commit carrying n writes.
func (r *Recorder) AddWriteGroup(n int) {
	r.writeGroups.Add(1)
	r.groupedWrites.Add(int64(n))
}

// AddDeviceRetry records one transparently retried transient device error.
func (r *Recorder) AddDeviceRetry() { r.deviceRetries.Add(1) }

// CountBackgroundError records a background failure that degraded the store.
func (r *Recorder) CountBackgroundError() { r.backgroundErrors.Add(1) }

// CountVersionSwept records one version snapshot freed by the reclamation
// sweep after its reader grace period elapsed.
func (r *Recorder) CountVersionSwept() { r.versionsSwept.Add(1) }

// CountRotation records one memtable rotation into the immutable queue.
func (r *Recorder) CountRotation() { r.rotations.Add(1) }

// Heat is the cheap write-pressure sample the memory governor polls every
// tick: cumulative counters only, no histogram merges or device reads (a
// full Snapshot per shard per tick would dominate a millisecond-scale
// governor interval). Callers diff consecutive samples with Delta to get
// per-interval rates.
type Heat struct {
	// UserBytes is cumulative user payload written (key+value).
	UserBytes int64
	// Flushes / FlushBytes count completed memtable flushes and their
	// volume.
	Flushes    int64
	FlushBytes int64
	// Rotations counts memtables rotated into the immutable queue; the
	// per-interval rotation rate is the most direct "this shard's buffer
	// is too small" signal.
	Rotations int64
}

// Heat samples the recorder's write-pressure counters.
func (r *Recorder) Heat() Heat {
	return Heat{
		UserBytes:  r.userBytes.Load(),
		Flushes:    r.flushes.Load(),
		FlushBytes: r.flushBytes.Load(),
		Rotations:  r.rotations.Load(),
	}
}

// Delta returns the per-interval heat between prev (the older sample) and
// h. Counters only grow, except across ResetCounters — a negative delta
// is clamped to zero so a mid-run reset reads as "idle", not as a huge
// negative rate.
func (h Heat) Delta(prev Heat) Heat {
	return Heat{
		UserBytes:  clampNonNeg(h.UserBytes - prev.UserBytes),
		Flushes:    clampNonNeg(h.Flushes - prev.Flushes),
		FlushBytes: clampNonNeg(h.FlushBytes - prev.FlushBytes),
		Rotations:  clampNonNeg(h.Rotations - prev.Rotations),
	}
}

func clampNonNeg(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// Reset zeroes every counter atomically, field by field. Unlike a struct
// copy (`*r = Recorder{}`), it is safe while other goroutines are
// concurrently updating the recorder: each atomic is stored individually,
// so no atomic word is ever written with a plain (racy) copy.
func (r *Recorder) Reset() {
	r.intervalStallNs.Store(0)
	r.intervalStalls.Store(0)
	r.cumulativeStallNs.Store(0)
	r.serializeNs.Store(0)
	r.deserializeNs.Store(0)
	r.flushNs.Store(0)
	r.flushBytes.Store(0)
	r.flushes.Store(0)
	r.compactionNs.Store(0)
	r.compactions.Store(0)
	r.userBytes.Store(0)
	r.puts.Store(0)
	r.gets.Store(0)
	r.deletes.Store(0)
	r.scans.Store(0)
	r.writeGroups.Store(0)
	r.groupedWrites.Store(0)
	r.deviceRetries.Store(0)
	r.backgroundErrors.Store(0)
	r.versionsSwept.Store(0)
	r.rotations.Store(0)
	for op := range r.opLat {
		for i := range r.opLat[op] {
			r.opLat[op][i].Reset()
		}
	}
}

// DeviceCounters mirrors a device's traffic in a snapshot.
type DeviceCounters struct {
	Name                    string
	BytesRead, BytesWritten int64
}

// BloomLevelCounters is one elastic-buffer level's read-path accounting:
// how often the level's filters were consulted, how many list searches
// they saved, and the measured (not theoretical) false-positive cost.
type BloomLevelCounters struct {
	Level int
	// Probes counts tables whose filter was consulted for a Get.
	Probes int64
	// Skips counts probes the filter answered "definitely absent" for.
	Skips int64
	// FalsePositives counts probes that passed the filter but found no
	// key in the table — each one paid a wasted NVM list search.
	FalsePositives int64
	// Hits counts Gets satisfied at this level.
	Hits int64
	// FalsePositiveRate is FalsePositives over the probes that passed the
	// filter (Probes − Skips); 0 when no probe passed.
	FalsePositiveRate float64
}

// Snapshot is a point-in-time copy of every metric, in the units the
// paper's tables use.
type Snapshot struct {
	IntervalStall    time.Duration
	IntervalStalls   int64
	CumulativeStall  time.Duration
	SerializeTime    time.Duration
	DeserializeTime  time.Duration
	FlushTime        time.Duration
	FlushBytes       int64
	Flushes          int64
	CompactionTime   time.Duration
	Compactions      int64
	UserBytesWritten int64
	Puts, Gets       int64
	Deletes, Scans   int64
	// Rotations counts memtables rotated into the immutable queue — the
	// write-heat signal behind the adaptive memory governor.
	Rotations int64

	// Memory-governor gauges (attached by the store via AttachMemory):
	// the active memtable's dynamic capacity target and its current fill.
	// On an aggregated snapshot both are sums across shards, so
	// MemTableTargetBytes tracks how the governor has divided its global
	// budget.
	MemTableTargetBytes int64
	MemTableUsedBytes   int64

	// WriteGroups counts leader commits; GroupedWrites counts the records
	// they carried. MeanGroupSize is their ratio (0 when no groups).
	WriteGroups   int64
	GroupedWrites int64
	MeanGroupSize float64

	// DeviceRetries counts transient device errors absorbed by retry;
	// BackgroundErrors counts failures that degraded the store.
	DeviceRetries    int64
	BackgroundErrors int64

	// Read-path observability (attached by the store via AttachReadPath):
	// per-level bloom-filter counters plus their totals, and the version
	// chain gauge behind the lock-free read path.
	BloomLevels         []BloomLevelCounters
	BloomProbes         int64
	BloomSkips          int64
	BloomFalsePositives int64
	// BloomFalsePositiveRate is the measured FP rate across all levels:
	// false positives over probes that passed the filter.
	BloomFalsePositiveRate float64
	// LiveVersions is the version chain's length (oldest through current);
	// PendingReleases counts releaseFns queued on retired versions still
	// inside their reader grace period; ReadEpoch is the global reclamation
	// epoch; VersionsSwept counts snapshots freed by the sweep.
	LiveVersions    int64
	PendingReleases int64
	ReadEpoch       uint64
	VersionsSwept   int64

	// OpLatencies holds the per-op-type service latency distribution,
	// indexed by Op (OpLatencies[OpGet].P999 is the Get tail), measured
	// inside the engine so every front end — bench, server stats op,
	// experiment harness — reports the same numbers.
	OpLatencies [NumOps]histogram.Snapshot

	// Write-path backlog gauges (attached by the store via AttachBacklog):
	// the elastic buffer's instantaneous debt. PendingImms counts rotated
	// memtables awaiting flush (the queue makeRoomForWrite grows without
	// bound when flushing falls behind) and PendingImmBytes their payload;
	// L0Tables/L0Bytes measure the flush output the compactor hasn't
	// merged down yet. Admission control thresholds against these.
	PendingImms     int64
	PendingImmBytes int64
	L0Tables        int64
	L0Bytes         int64

	// Devices lists per-device traffic; WriteAmplification is total
	// persistent-device write traffic ÷ user bytes.
	Devices            []DeviceCounters
	WriteAmplification float64

	// ValueLog describes the key-value-separation value log (attached by
	// the store via AttachValueLog; zero when separation is off).
	ValueLog ValueLogCounters

	// Shards holds the per-shard breakdown when this snapshot aggregates
	// a hash-partitioned store (see Aggregate); nil for single-engine
	// stores. Counters in the parent snapshot are sums across shards,
	// stall durations are maxima (shards stall in parallel, so the sum
	// would overstate wall-clock impact).
	Shards []Snapshot
}

// ValueLogCounters is the value log's accounting: segment population,
// live-vs-dead bytes, append traffic, and GC work (relocations and
// reclaimed segments). DeadRatio is dead bytes over total segment bytes.
type ValueLogCounters struct {
	Enabled             bool
	Segments            int64
	SegmentBytes        int64
	LiveBytes           int64
	DeadRatio           float64
	Appends             int64
	AppendedBytes       int64
	GCRelocations       int64
	GCRelocatedBytes    int64
	GCSegmentsReclaimed int64
	GCReclaimedBytes    int64
}

// AttachValueLog fills the snapshot's value-log section.
func (s *Snapshot) AttachValueLog(v ValueLogCounters) {
	if v.SegmentBytes > 0 {
		v.DeadRatio = float64(v.SegmentBytes-v.LiveBytes) / float64(v.SegmentBytes)
	}
	s.ValueLog = v
}

// Aggregate combines per-shard snapshots into one store-level snapshot:
// counters and byte totals are summed, stall/work durations that overlap
// in wall time are taken as maxima (IntervalStall, CumulativeStall) while
// background work times are summed (they measure CPU spent, not
// wall-clock), per-level bloom counters are summed level-wise, device
// traffic is merged by device name, and derived rates (write
// amplification, mean group size, bloom FP rates) are recomputed from the
// combined totals. The inputs are retained in the result's Shards slice.
func Aggregate(shards []Snapshot) Snapshot {
	var out Snapshot
	if len(shards) == 0 {
		return out
	}
	devIndex := map[string]int{}
	var levels []BloomLevelCounters
	for _, s := range shards {
		if s.IntervalStall > out.IntervalStall {
			out.IntervalStall = s.IntervalStall
		}
		if s.CumulativeStall > out.CumulativeStall {
			out.CumulativeStall = s.CumulativeStall
		}
		out.IntervalStalls += s.IntervalStalls
		out.SerializeTime += s.SerializeTime
		out.DeserializeTime += s.DeserializeTime
		out.FlushTime += s.FlushTime
		out.FlushBytes += s.FlushBytes
		out.Flushes += s.Flushes
		out.CompactionTime += s.CompactionTime
		out.Compactions += s.Compactions
		out.UserBytesWritten += s.UserBytesWritten
		out.Puts += s.Puts
		out.Gets += s.Gets
		out.Deletes += s.Deletes
		out.Scans += s.Scans
		out.WriteGroups += s.WriteGroups
		out.GroupedWrites += s.GroupedWrites
		out.DeviceRetries += s.DeviceRetries
		out.BackgroundErrors += s.BackgroundErrors
		out.BloomProbes += s.BloomProbes
		out.BloomSkips += s.BloomSkips
		out.BloomFalsePositives += s.BloomFalsePositives
		out.LiveVersions += s.LiveVersions
		out.PendingReleases += s.PendingReleases
		out.VersionsSwept += s.VersionsSwept
		out.PendingImms += s.PendingImms
		out.PendingImmBytes += s.PendingImmBytes
		out.L0Tables += s.L0Tables
		out.L0Bytes += s.L0Bytes
		out.Rotations += s.Rotations
		out.MemTableTargetBytes += s.MemTableTargetBytes
		out.MemTableUsedBytes += s.MemTableUsedBytes
		if s.ReadEpoch > out.ReadEpoch {
			out.ReadEpoch = s.ReadEpoch
		}
		for op := range s.OpLatencies {
			out.OpLatencies[op] = out.OpLatencies[op].Merge(s.OpLatencies[op])
		}
		for _, l := range s.BloomLevels {
			for len(levels) <= l.Level {
				levels = append(levels, BloomLevelCounters{Level: len(levels)})
			}
			dst := &levels[l.Level]
			dst.Probes += l.Probes
			dst.Skips += l.Skips
			dst.FalsePositives += l.FalsePositives
			dst.Hits += l.Hits
		}
		for _, d := range s.Devices {
			i, ok := devIndex[d.Name]
			if !ok {
				i = len(out.Devices)
				devIndex[d.Name] = i
				out.Devices = append(out.Devices, DeviceCounters{Name: d.Name})
			}
			out.Devices[i].BytesRead += d.BytesRead
			out.Devices[i].BytesWritten += d.BytesWritten
		}
		if s.ValueLog.Enabled {
			out.ValueLog.Enabled = true
		}
		out.ValueLog.Segments += s.ValueLog.Segments
		out.ValueLog.SegmentBytes += s.ValueLog.SegmentBytes
		out.ValueLog.LiveBytes += s.ValueLog.LiveBytes
		out.ValueLog.Appends += s.ValueLog.Appends
		out.ValueLog.AppendedBytes += s.ValueLog.AppendedBytes
		out.ValueLog.GCRelocations += s.ValueLog.GCRelocations
		out.ValueLog.GCRelocatedBytes += s.ValueLog.GCRelocatedBytes
		out.ValueLog.GCSegmentsReclaimed += s.ValueLog.GCSegmentsReclaimed
		out.ValueLog.GCReclaimedBytes += s.ValueLog.GCReclaimedBytes
	}
	if out.ValueLog.SegmentBytes > 0 {
		out.ValueLog.DeadRatio = float64(out.ValueLog.SegmentBytes-out.ValueLog.LiveBytes) / float64(out.ValueLog.SegmentBytes)
	}
	for i := range levels {
		l := &levels[i]
		if passed := l.Probes - l.Skips; passed > 0 {
			l.FalsePositiveRate = float64(l.FalsePositives) / float64(passed)
		}
	}
	out.BloomLevels = levels
	if passed := out.BloomProbes - out.BloomSkips; passed > 0 {
		out.BloomFalsePositiveRate = float64(out.BloomFalsePositives) / float64(passed)
	}
	if out.WriteGroups > 0 {
		out.MeanGroupSize = float64(out.GroupedWrites) / float64(out.WriteGroups)
	}
	// Recompute WA over the persistent devices only — by convention the
	// per-shard snapshots list the volatile "dram" device first and
	// persistent devices after it (see core.DB.Stats).
	var written int64
	for _, d := range out.Devices {
		if d.Name != "dram" {
			written += d.BytesWritten
		}
	}
	if out.UserBytesWritten > 0 {
		out.WriteAmplification = float64(written) / float64(out.UserBytesWritten)
	}
	out.Shards = append([]Snapshot(nil), shards...)
	return out
}

// Snapshot captures the recorder. Device traffic and WA are attached by
// the store, which knows its devices.
func (r *Recorder) Snapshot() Snapshot {
	groups := r.writeGroups.Load()
	grouped := r.groupedWrites.Load()
	mean := 0.0
	if groups > 0 {
		mean = float64(grouped) / float64(groups)
	}
	var lat [NumOps]histogram.Snapshot
	for op := range r.opLat {
		for i := range r.opLat[op] {
			lat[op] = lat[op].Merge(r.opLat[op][i].Snapshot())
		}
	}
	return Snapshot{
		OpLatencies:      lat,
		WriteGroups:      groups,
		GroupedWrites:    grouped,
		MeanGroupSize:    mean,
		DeviceRetries:    r.deviceRetries.Load(),
		BackgroundErrors: r.backgroundErrors.Load(),
		VersionsSwept:    r.versionsSwept.Load(),
		IntervalStall:    time.Duration(r.intervalStallNs.Load()),
		IntervalStalls:   r.intervalStalls.Load(),
		CumulativeStall:  time.Duration(r.cumulativeStallNs.Load()),
		SerializeTime:    time.Duration(r.serializeNs.Load()),
		DeserializeTime:  time.Duration(r.deserializeNs.Load()),
		FlushTime:        time.Duration(r.flushNs.Load()),
		FlushBytes:       r.flushBytes.Load(),
		Flushes:          r.flushes.Load(),
		CompactionTime:   time.Duration(r.compactionNs.Load()),
		Compactions:      r.compactions.Load(),
		UserBytesWritten: r.userBytes.Load(),
		Puts:             r.puts.Load(),
		Gets:             r.gets.Load(),
		Deletes:          r.deletes.Load(),
		Scans:            r.scans.Load(),
		Rotations:        r.rotations.Load(),
	}
}

// AttachReadPath fills the snapshot's read-path observability: per-level
// bloom counters (with per-level and aggregate measured FP rates) and the
// version-chain gauge.
func (s *Snapshot) AttachReadPath(levels []BloomLevelCounters, liveVersions, pendingReleases int64, epoch uint64) {
	s.BloomLevels = levels
	for i := range levels {
		l := &levels[i]
		if passed := l.Probes - l.Skips; passed > 0 {
			l.FalsePositiveRate = float64(l.FalsePositives) / float64(passed)
		}
		s.BloomProbes += l.Probes
		s.BloomSkips += l.Skips
		s.BloomFalsePositives += l.FalsePositives
	}
	if passed := s.BloomProbes - s.BloomSkips; passed > 0 {
		s.BloomFalsePositiveRate = float64(s.BloomFalsePositives) / float64(passed)
	}
	s.LiveVersions = liveVersions
	s.PendingReleases = pendingReleases
	s.ReadEpoch = epoch
}

// AttachBacklog fills the snapshot's write-path backlog gauges; the store
// reads them off its current version (imms queue + level 0).
func (s *Snapshot) AttachBacklog(imms, immBytes, l0Tables, l0Bytes int64) {
	s.PendingImms = imms
	s.PendingImmBytes = immBytes
	s.L0Tables = l0Tables
	s.L0Bytes = l0Bytes
}

// AttachMemory fills the snapshot's memory-governor gauges: the active
// memtable's dynamic capacity target and its current fill in bytes.
func (s *Snapshot) AttachMemory(targetBytes, usedBytes int64) {
	s.MemTableTargetBytes = targetBytes
	s.MemTableUsedBytes = usedBytes
}

// AttachDevices fills the snapshot's device traffic and computes write
// amplification over the given persistent devices' write bytes.
func (s *Snapshot) AttachDevices(devs ...DeviceCounters) {
	s.Devices = append(s.Devices, devs...)
	var written int64
	for _, d := range devs {
		written += d.BytesWritten
	}
	if s.UserBytesWritten > 0 {
		s.WriteAmplification = float64(written) / float64(s.UserBytesWritten)
	}
}
