package stats

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderSnapshot(t *testing.T) {
	r := &Recorder{}
	r.AddIntervalStall(100 * time.Millisecond)
	r.AddIntervalStall(50 * time.Millisecond)
	r.AddCumulativeStall(10 * time.Millisecond)
	r.AddSerialize(time.Millisecond)
	r.AddDeserialize(2 * time.Millisecond)
	r.AddFlush(5*time.Millisecond, 1024)
	r.AddCompaction(7 * time.Millisecond)
	r.AddUserBytes(4096)
	r.AddUserBytesAndCount(100, false)
	r.AddUserBytesAndCount(50, true)
	r.CountPut()
	r.CountGet()
	r.CountDelete()
	r.CountScan()

	s := r.Snapshot()
	if s.IntervalStall != 150*time.Millisecond || s.IntervalStalls != 2 {
		t.Errorf("interval stalls: %v ×%d", s.IntervalStall, s.IntervalStalls)
	}
	if s.CumulativeStall != 10*time.Millisecond {
		t.Errorf("cumulative stall: %v", s.CumulativeStall)
	}
	if s.SerializeTime != time.Millisecond || s.DeserializeTime != 2*time.Millisecond {
		t.Error("serialize/deserialize times wrong")
	}
	if s.FlushTime != 5*time.Millisecond || s.FlushBytes != 1024 || s.Flushes != 1 {
		t.Error("flush accounting wrong")
	}
	if s.CompactionTime != 7*time.Millisecond || s.Compactions != 1 {
		t.Error("compaction accounting wrong")
	}
	if s.UserBytesWritten != 4096+100+50 {
		t.Errorf("user bytes = %d", s.UserBytesWritten)
	}
	if s.Puts != 2 || s.Gets != 1 || s.Deletes != 2 || s.Scans != 1 {
		t.Errorf("op counts: %d/%d/%d/%d", s.Puts, s.Gets, s.Deletes, s.Scans)
	}
}

func TestAttachDevicesComputesWA(t *testing.T) {
	r := &Recorder{}
	r.AddUserBytes(1000)
	s := r.Snapshot()
	s.AttachDevices(
		DeviceCounters{Name: "nvm", BytesWritten: 2500},
		DeviceCounters{Name: "ssd", BytesWritten: 500},
	)
	if s.WriteAmplification != 3.0 {
		t.Errorf("WA = %.2f, want 3.0", s.WriteAmplification)
	}
	if len(s.Devices) != 2 {
		t.Errorf("devices = %d", len(s.Devices))
	}
	// Zero user bytes → WA stays zero (no divide-by-zero).
	var empty Snapshot
	empty.AttachDevices(DeviceCounters{BytesWritten: 100})
	if empty.WriteAmplification != 0 {
		t.Error("WA computed with zero user bytes")
	}
}

func TestRecordOpLatencies(t *testing.T) {
	r := &Recorder{}
	for i := 1; i <= 100; i++ {
		r.RecordOp(OpGet, time.Duration(i)*time.Microsecond)
	}
	r.RecordOpN(OpPut, 40*time.Microsecond, 8) // one group commit, 8 records
	r.RecordOpN(OpPut, time.Microsecond, 0)    // no-op
	r.RecordOp(Op(-1), time.Microsecond)       // out of range, ignored
	r.RecordOp(NumOps, time.Microsecond)       // out of range, ignored

	s := r.Snapshot()
	get := s.OpLatencies[OpGet]
	if get.Count != 100 {
		t.Errorf("get count = %d", get.Count)
	}
	if get.P50 > get.P99 || get.P99 > get.P999 || get.P999 > get.Max {
		t.Errorf("get percentiles not monotone: %+v", get)
	}
	put := s.OpLatencies[OpPut]
	if put.Count != 8 || put.P50 != 40*time.Microsecond {
		t.Errorf("put latencies: %+v", put)
	}
	if s.OpLatencies[OpScan].Count != 0 {
		t.Error("scan recorded spuriously")
	}

	r.Reset()
	if got := r.Snapshot(); got.OpLatencies[OpGet].Count != 0 || got.OpLatencies[OpPut].Count != 0 {
		t.Error("Reset left op latency samples")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpPut: "put", OpGet: "get", OpDelete: "delete",
		OpScan: "scan", OpCommit: "commit", NumOps: "unknown"}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), name)
		}
	}
}

func TestAggregateMergesOpLatenciesAndBacklog(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	for i := 0; i < 50; i++ {
		a.RecordOp(OpGet, 10*time.Microsecond)
		b.RecordOp(OpGet, 1000*time.Microsecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.AttachBacklog(3, 3<<10, 2, 2<<10)
	sb.AttachBacklog(5, 5<<10, 1, 1<<10)

	out := Aggregate([]Snapshot{sa, sb})
	get := out.OpLatencies[OpGet]
	if get.Count != 100 {
		t.Errorf("aggregated get count = %d", get.Count)
	}
	// Half the samples are fast, half slow: the merged p99 must reflect
	// the slow shard, the min the fast one.
	if get.P99 < 500*time.Microsecond {
		t.Errorf("aggregated p99 = %v, want ≥500µs", get.P99)
	}
	if get.Min != 10*time.Microsecond {
		t.Errorf("aggregated min = %v", get.Min)
	}
	if out.PendingImms != 8 || out.PendingImmBytes != 8<<10 || out.L0Tables != 3 || out.L0Bytes != 3<<10 {
		t.Errorf("aggregated backlog: imms=%d immBytes=%d l0=%d l0Bytes=%d",
			out.PendingImms, out.PendingImmBytes, out.L0Tables, out.L0Bytes)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := &Recorder{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.CountPut()
				r.AddUserBytes(1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Puts != 4000 || s.UserBytesWritten != 4000 {
		t.Errorf("concurrent counts: puts=%d bytes=%d", s.Puts, s.UserBytesWritten)
	}
}
