package stats

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderSnapshot(t *testing.T) {
	r := &Recorder{}
	r.AddIntervalStall(100 * time.Millisecond)
	r.AddIntervalStall(50 * time.Millisecond)
	r.AddCumulativeStall(10 * time.Millisecond)
	r.AddSerialize(time.Millisecond)
	r.AddDeserialize(2 * time.Millisecond)
	r.AddFlush(5*time.Millisecond, 1024)
	r.AddCompaction(7 * time.Millisecond)
	r.AddUserBytes(4096)
	r.AddUserBytesAndCount(100, false)
	r.AddUserBytesAndCount(50, true)
	r.CountPut()
	r.CountGet()
	r.CountDelete()
	r.CountScan()

	s := r.Snapshot()
	if s.IntervalStall != 150*time.Millisecond || s.IntervalStalls != 2 {
		t.Errorf("interval stalls: %v ×%d", s.IntervalStall, s.IntervalStalls)
	}
	if s.CumulativeStall != 10*time.Millisecond {
		t.Errorf("cumulative stall: %v", s.CumulativeStall)
	}
	if s.SerializeTime != time.Millisecond || s.DeserializeTime != 2*time.Millisecond {
		t.Error("serialize/deserialize times wrong")
	}
	if s.FlushTime != 5*time.Millisecond || s.FlushBytes != 1024 || s.Flushes != 1 {
		t.Error("flush accounting wrong")
	}
	if s.CompactionTime != 7*time.Millisecond || s.Compactions != 1 {
		t.Error("compaction accounting wrong")
	}
	if s.UserBytesWritten != 4096+100+50 {
		t.Errorf("user bytes = %d", s.UserBytesWritten)
	}
	if s.Puts != 2 || s.Gets != 1 || s.Deletes != 2 || s.Scans != 1 {
		t.Errorf("op counts: %d/%d/%d/%d", s.Puts, s.Gets, s.Deletes, s.Scans)
	}
}

func TestAttachDevicesComputesWA(t *testing.T) {
	r := &Recorder{}
	r.AddUserBytes(1000)
	s := r.Snapshot()
	s.AttachDevices(
		DeviceCounters{Name: "nvm", BytesWritten: 2500},
		DeviceCounters{Name: "ssd", BytesWritten: 500},
	)
	if s.WriteAmplification != 3.0 {
		t.Errorf("WA = %.2f, want 3.0", s.WriteAmplification)
	}
	if len(s.Devices) != 2 {
		t.Errorf("devices = %d", len(s.Devices))
	}
	// Zero user bytes → WA stays zero (no divide-by-zero).
	var empty Snapshot
	empty.AttachDevices(DeviceCounters{BytesWritten: 100})
	if empty.WriteAmplification != 0 {
		t.Error("WA computed with zero user bytes")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := &Recorder{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.CountPut()
				r.AddUserBytes(1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Puts != 4000 || s.UserBytesWritten != 4000 {
		t.Errorf("concurrent counts: puts=%d bytes=%d", s.Puts, s.UserBytesWritten)
	}
}
