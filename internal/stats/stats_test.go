package stats

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderSnapshot(t *testing.T) {
	r := &Recorder{}
	r.AddIntervalStall(100 * time.Millisecond)
	r.AddIntervalStall(50 * time.Millisecond)
	r.AddCumulativeStall(10 * time.Millisecond)
	r.AddSerialize(time.Millisecond)
	r.AddDeserialize(2 * time.Millisecond)
	r.AddFlush(5*time.Millisecond, 1024)
	r.AddCompaction(7 * time.Millisecond)
	r.AddUserBytes(4096)
	r.AddUserBytesAndCount(100, false)
	r.AddUserBytesAndCount(50, true)
	r.CountPut()
	r.CountGet()
	r.CountDelete()
	r.CountScan()

	s := r.Snapshot()
	if s.IntervalStall != 150*time.Millisecond || s.IntervalStalls != 2 {
		t.Errorf("interval stalls: %v ×%d", s.IntervalStall, s.IntervalStalls)
	}
	if s.CumulativeStall != 10*time.Millisecond {
		t.Errorf("cumulative stall: %v", s.CumulativeStall)
	}
	if s.SerializeTime != time.Millisecond || s.DeserializeTime != 2*time.Millisecond {
		t.Error("serialize/deserialize times wrong")
	}
	if s.FlushTime != 5*time.Millisecond || s.FlushBytes != 1024 || s.Flushes != 1 {
		t.Error("flush accounting wrong")
	}
	if s.CompactionTime != 7*time.Millisecond || s.Compactions != 1 {
		t.Error("compaction accounting wrong")
	}
	if s.UserBytesWritten != 4096+100+50 {
		t.Errorf("user bytes = %d", s.UserBytesWritten)
	}
	if s.Puts != 2 || s.Gets != 1 || s.Deletes != 2 || s.Scans != 1 {
		t.Errorf("op counts: %d/%d/%d/%d", s.Puts, s.Gets, s.Deletes, s.Scans)
	}
}

func TestAttachDevicesComputesWA(t *testing.T) {
	r := &Recorder{}
	r.AddUserBytes(1000)
	s := r.Snapshot()
	s.AttachDevices(
		DeviceCounters{Name: "nvm", BytesWritten: 2500},
		DeviceCounters{Name: "ssd", BytesWritten: 500},
	)
	if s.WriteAmplification != 3.0 {
		t.Errorf("WA = %.2f, want 3.0", s.WriteAmplification)
	}
	if len(s.Devices) != 2 {
		t.Errorf("devices = %d", len(s.Devices))
	}
	// Zero user bytes → WA stays zero (no divide-by-zero).
	var empty Snapshot
	empty.AttachDevices(DeviceCounters{BytesWritten: 100})
	if empty.WriteAmplification != 0 {
		t.Error("WA computed with zero user bytes")
	}
}

func TestRecordOpLatencies(t *testing.T) {
	r := &Recorder{}
	for i := 1; i <= 100; i++ {
		r.RecordOp(OpGet, time.Duration(i)*time.Microsecond)
	}
	r.RecordOpN(OpPut, 40*time.Microsecond, 8) // one group commit, 8 records
	r.RecordOpN(OpPut, time.Microsecond, 0)    // no-op
	r.RecordOp(Op(-1), time.Microsecond)       // out of range, ignored
	r.RecordOp(NumOps, time.Microsecond)       // out of range, ignored

	s := r.Snapshot()
	get := s.OpLatencies[OpGet]
	if get.Count != 100 {
		t.Errorf("get count = %d", get.Count)
	}
	if get.P50 > get.P99 || get.P99 > get.P999 || get.P999 > get.Max {
		t.Errorf("get percentiles not monotone: %+v", get)
	}
	put := s.OpLatencies[OpPut]
	if put.Count != 8 || put.P50 != 40*time.Microsecond {
		t.Errorf("put latencies: %+v", put)
	}
	if s.OpLatencies[OpScan].Count != 0 {
		t.Error("scan recorded spuriously")
	}

	r.Reset()
	if got := r.Snapshot(); got.OpLatencies[OpGet].Count != 0 || got.OpLatencies[OpPut].Count != 0 {
		t.Error("Reset left op latency samples")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpPut: "put", OpGet: "get", OpDelete: "delete",
		OpScan: "scan", OpCommit: "commit", NumOps: "unknown"}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), name)
		}
	}
}

func TestAggregateMergesOpLatenciesAndBacklog(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	for i := 0; i < 50; i++ {
		a.RecordOp(OpGet, 10*time.Microsecond)
		b.RecordOp(OpGet, 1000*time.Microsecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.AttachBacklog(3, 3<<10, 2, 2<<10)
	sb.AttachBacklog(5, 5<<10, 1, 1<<10)

	out := Aggregate([]Snapshot{sa, sb})
	get := out.OpLatencies[OpGet]
	if get.Count != 100 {
		t.Errorf("aggregated get count = %d", get.Count)
	}
	// Half the samples are fast, half slow: the merged p99 must reflect
	// the slow shard, the min the fast one.
	if get.P99 < 500*time.Microsecond {
		t.Errorf("aggregated p99 = %v, want ≥500µs", get.P99)
	}
	if get.Min != 10*time.Microsecond {
		t.Errorf("aggregated min = %v", get.Min)
	}
	if out.PendingImms != 8 || out.PendingImmBytes != 8<<10 || out.L0Tables != 3 || out.L0Bytes != 3<<10 {
		t.Errorf("aggregated backlog: imms=%d immBytes=%d l0=%d l0Bytes=%d",
			out.PendingImms, out.PendingImmBytes, out.L0Tables, out.L0Bytes)
	}
}

// TestHeatSampling pins the governor's polling contract: Heat is a cheap
// cumulative sample, Delta yields the per-interval change, and a counter
// reset mid-run reads as idle (clamped to zero), never as a negative
// rate.
func TestHeatSampling(t *testing.T) {
	r := &Recorder{}
	r.AddUserBytes(4096)
	r.AddFlush(time.Millisecond, 1024)
	r.CountRotation()
	r.CountRotation()

	h1 := r.Heat()
	if h1.UserBytes != 4096 || h1.Flushes != 1 || h1.FlushBytes != 1024 || h1.Rotations != 2 {
		t.Fatalf("heat sample = %+v", h1)
	}
	r.AddUserBytes(100)
	r.CountRotation()
	d := r.Heat().Delta(h1)
	if d.UserBytes != 100 || d.Rotations != 1 || d.Flushes != 0 || d.FlushBytes != 0 {
		t.Errorf("delta = %+v", d)
	}

	// Snapshot carries the same rotation counter; Reset zeroes it.
	if got := r.Snapshot().Rotations; got != 3 {
		t.Errorf("snapshot rotations = %d", got)
	}
	r.Reset()
	if got := r.Heat(); got != (Heat{}) {
		t.Errorf("heat after reset = %+v", got)
	}
	// A delta across the reset clamps to zero instead of going negative.
	if d := r.Heat().Delta(h1); d != (Heat{}) {
		t.Errorf("delta across reset = %+v", d)
	}
}

// TestAggregateSumsAndMaxima is the regression test for the cross-shard
// merge: additive counters (backlog gauges, heat counters, memory
// gauges) must sum, while wall-clock stalls and the read epoch — where a
// sum would overstate parallel shards — must take the maximum.
func TestAggregateSumsAndMaxima(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	a.AddIntervalStall(30 * time.Millisecond)
	b.AddIntervalStall(50 * time.Millisecond)
	a.AddCumulativeStall(5 * time.Millisecond)
	b.AddCumulativeStall(2 * time.Millisecond)
	a.AddFlush(time.Millisecond, 1000)
	b.AddFlush(time.Millisecond, 2000)
	a.AddUserBytes(10)
	b.AddUserBytes(20)
	for i := 0; i < 3; i++ {
		a.CountRotation()
	}
	b.CountRotation()

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.AttachBacklog(3, 3<<10, 2, 2<<10)
	sb.AttachBacklog(5, 5<<10, 1, 1<<10)
	sa.AttachMemory(8<<10, 100)
	sb.AttachMemory(24<<10, 300)
	sa.ReadEpoch = 7
	sb.ReadEpoch = 4

	out := Aggregate([]Snapshot{sa, sb})
	// Sums.
	if out.Flushes != 2 || out.FlushBytes != 3000 {
		t.Errorf("flushes = %d/%d", out.Flushes, out.FlushBytes)
	}
	if out.Rotations != 4 {
		t.Errorf("rotations = %d, want 4", out.Rotations)
	}
	if out.UserBytesWritten != 30 {
		t.Errorf("user bytes = %d", out.UserBytesWritten)
	}
	if out.PendingImms != 8 || out.PendingImmBytes != 8<<10 || out.L0Tables != 3 || out.L0Bytes != 3<<10 {
		t.Errorf("backlog: imms=%d immBytes=%d l0=%d l0Bytes=%d",
			out.PendingImms, out.PendingImmBytes, out.L0Tables, out.L0Bytes)
	}
	if out.MemTableTargetBytes != 32<<10 || out.MemTableUsedBytes != 400 {
		t.Errorf("memory gauges: target=%d used=%d", out.MemTableTargetBytes, out.MemTableUsedBytes)
	}
	// Maxima: shards stall in parallel; a sum would overstate wall-clock.
	if out.IntervalStall != 50*time.Millisecond {
		t.Errorf("interval stall = %v, want the 50ms max", out.IntervalStall)
	}
	if out.IntervalStalls != 2 {
		t.Errorf("interval stall count = %d, want the sum 2", out.IntervalStalls)
	}
	if out.CumulativeStall != 5*time.Millisecond {
		t.Errorf("cumulative stall = %v, want the 5ms max", out.CumulativeStall)
	}
	if out.ReadEpoch != 7 {
		t.Errorf("read epoch = %d, want the max 7", out.ReadEpoch)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := &Recorder{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.CountPut()
				r.AddUserBytes(1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Puts != 4000 || s.UserBytesWritten != 4000 {
		t.Errorf("concurrent counts: puts=%d bytes=%d", s.Puts, s.UserBytesWritten)
	}
}
