package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"miodb/internal/keys"
	"miodb/internal/vaddr"
)

func newList(t testing.TB) *List {
	t.Helper()
	s := vaddr.NewSpace()
	r := s.NewRegion(1<<20, nil)
	l, err := New(r)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestEmptyList(t *testing.T) {
	l := newList(t)
	if !l.Empty() {
		t.Error("new list not empty")
	}
	if _, _, _, ok := l.Get([]byte("a")); ok {
		t.Error("Get on empty list found something")
	}
	if !l.First().IsNil() {
		t.Error("First on empty list not nil")
	}
	if !l.RemoveFirst().IsNil() {
		t.Error("RemoveFirst on empty list not nil")
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Error("iterator valid on empty list")
	}
}

func TestInsertGet(t *testing.T) {
	l := newList(t)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v := []byte(fmt.Sprintf("val-%03d", i))
		if err := l.Insert(k, v, uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 100 {
		t.Errorf("Count = %d", l.Count())
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v, seq, kind, ok := l.Get(k)
		if !ok {
			t.Fatalf("Get(%s) missing", k)
		}
		if string(v) != fmt.Sprintf("val-%03d", i) || seq != uint64(i+1) || kind != keys.KindSet {
			t.Fatalf("Get(%s) = %q seq=%d kind=%d", k, v, seq, kind)
		}
	}
	if _, _, _, ok := l.Get([]byte("absent")); ok {
		t.Error("Get(absent) found something")
	}
	if n, err := l.CheckInvariants(); err != nil || n != 100 {
		t.Fatalf("invariants: n=%d err=%v", n, err)
	}
}

func TestMultipleVersionsNewestFirst(t *testing.T) {
	l := newList(t)
	k := []byte("k")
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Insert(k, []byte(fmt.Sprintf("v%d", seq)), seq, keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	v, seq, _, ok := l.Get(k)
	if !ok || string(v) != "v5" || seq != 5 {
		t.Fatalf("Get returned %q seq=%d, want v5 seq=5", v, seq)
	}
	// Iterate: versions must appear newest-first.
	it := l.NewIterator()
	want := uint64(5)
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if it.Seq() != want {
			t.Fatalf("iteration seq = %d, want %d", it.Seq(), want)
		}
		want--
	}
}

func TestTombstones(t *testing.T) {
	l := newList(t)
	k := []byte("k")
	if err := l.Insert(k, []byte("v"), 1, keys.KindSet); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert(k, nil, 2, keys.KindDelete); err != nil {
		t.Fatal(err)
	}
	_, seq, kind, ok := l.Get(k)
	if !ok || kind != keys.KindDelete || seq != 2 {
		t.Fatalf("Get after delete: seq=%d kind=%d ok=%v", seq, kind, ok)
	}
}

func TestDuplicateSeqRejected(t *testing.T) {
	l := newList(t)
	if err := l.Insert([]byte("k"), []byte("v"), 7, keys.KindSet); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert([]byte("k"), []byte("v2"), 7, keys.KindSet); err == nil {
		t.Error("duplicate (key, seq) accepted")
	}
}

func TestValidation(t *testing.T) {
	l := newList(t)
	if err := l.Insert(nil, []byte("v"), 1, keys.KindSet); err == nil {
		t.Error("empty key accepted")
	}
	if err := l.Insert(make([]byte, maxKeyLen+1), nil, 1, keys.KindSet); err == nil {
		t.Error("oversized key accepted")
	}
	ro := Attach(l.Space(), l.Head(), nil)
	if err := ro.Insert([]byte("k"), []byte("v"), 1, keys.KindSet); err == nil {
		t.Error("insert into read-only list accepted")
	}
}

func TestIteratorSeek(t *testing.T) {
	l := newList(t)
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i*2)) // even keys only
		if err := l.Insert(k, []byte("v"), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	it := l.NewIterator()
	it.Seek([]byte("key-013")) // between 012 and 014
	if !it.Valid() || string(it.Key()) != "key-014" {
		t.Fatalf("Seek landed on %q", it.Key())
	}
	it.Seek([]byte("key-012")) // exact
	if !it.Valid() || string(it.Key()) != "key-012" {
		t.Fatalf("exact Seek landed on %q", it.Key())
	}
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Error("Seek past end should invalidate")
	}
	it.Seek(nil)
	if !it.Valid() || string(it.Key()) != "key-000" {
		t.Error("Seek(nil) should land on first")
	}
}

func TestOrderedIterationRandomInserts(t *testing.T) {
	l := newList(t)
	rnd := rand.New(rand.NewSource(42))
	golden := map[string]string{}
	for seq := uint64(1); seq <= 500; seq++ {
		k := fmt.Sprintf("key-%04d", rnd.Intn(200))
		v := fmt.Sprintf("val-%d", seq)
		if err := l.Insert([]byte(k), []byte(v), seq, keys.KindSet); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
	}
	// Newest version visible through Get.
	for k, v := range golden {
		got, _, _, ok := l.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q, want %q", k, got, v)
		}
	}
	// Iteration sorted, and first version of each key is the newest.
	var prevKey []byte
	var prevSeq uint64
	seen := map[string]bool{}
	it := l.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := it.Key()
		if prevKey != nil {
			if c := keys.Compare(prevKey, prevSeq, k, it.Seq()); c >= 0 {
				t.Fatalf("iteration out of order at %q", k)
			}
		}
		if !seen[string(k)] {
			seen[string(k)] = true
			if string(it.Value()) != golden[string(k)] {
				t.Fatalf("newest version of %q = %q, want %q", k, it.Value(), golden[string(k)])
			}
		}
		prevKey = append(prevKey[:0], k...)
		prevSeq = it.Seq()
	}
	if _, err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveFirstDrain(t *testing.T) {
	l := newList(t)
	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := l.Insert(k, []byte("v"), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		node := l.RemoveFirst()
		if node.IsNil() {
			t.Fatalf("RemoveFirst returned nil at %d", i)
		}
		want := fmt.Sprintf("key-%03d", i)
		if string(node.Key()) != want {
			t.Fatalf("RemoveFirst order: got %q want %q", node.Key(), want)
		}
		if _, err := l.CheckInvariants(); err != nil {
			t.Fatalf("after removing %d: %v", i, err)
		}
	}
	if !l.Empty() || l.Count() != 0 {
		t.Error("list not empty after drain")
	}
}

func TestRemoveExact(t *testing.T) {
	l := newList(t)
	for i := 0; i < 20; i++ {
		l.Insert([]byte(fmt.Sprintf("key-%02d", i)), []byte("v"), uint64(i+1), keys.KindSet)
	}
	if n := l.Remove([]byte("key-10"), 11); n.IsNil() {
		t.Fatal("Remove of present node failed")
	}
	if _, _, _, ok := l.Get([]byte("key-10")); ok {
		t.Error("removed key still found")
	}
	if n := l.Remove([]byte("key-10"), 11); !n.IsNil() {
		t.Error("double remove returned a node")
	}
	if n := l.Remove([]byte("key-05"), 999); !n.IsNil() {
		t.Error("Remove with wrong seq returned a node")
	}
	if _, err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertNodeMovesBetweenLists(t *testing.T) {
	space := vaddr.NewSpace()
	r1 := space.NewRegion(1<<20, nil)
	r2 := space.NewRegion(1<<20, nil)
	src, _ := New(r1)
	dst, _ := New(r2)
	for i := 0; i < 50; i++ {
		src.Insert([]byte(fmt.Sprintf("s-%02d", i)), []byte("sv"), uint64(i+1), keys.KindSet)
	}
	for i := 0; i < 50; i++ {
		dst.Insert([]byte(fmt.Sprintf("d-%02d", i)), []byte("dv"), uint64(100+i), keys.KindSet)
	}
	// Move every node from src into dst: the zero-copy primitive.
	for {
		n := src.RemoveFirst()
		if n.IsNil() {
			break
		}
		dst.InsertNode(n)
	}
	if !src.Empty() {
		t.Fatal("src not drained")
	}
	if dst.Count() != 100 {
		t.Fatalf("dst count = %d", dst.Count())
	}
	if n, err := dst.CheckInvariants(); err != nil || n != 100 {
		t.Fatalf("dst invariants: n=%d err=%v", n, err)
	}
	for i := 0; i < 50; i++ {
		if _, _, _, ok := dst.Get([]byte(fmt.Sprintf("s-%02d", i))); !ok {
			t.Fatalf("moved key s-%02d missing", i)
		}
	}
}

func TestRemoveAfter(t *testing.T) {
	l := newList(t)
	l.Insert([]byte("a"), []byte("v1"), 1, keys.KindSet)
	l.Insert([]byte("a"), []byte("v2"), 2, keys.KindSet)
	l.Insert([]byte("b"), []byte("v3"), 3, keys.KindSet)
	newest := l.First() // (a, 2)
	if newest.Seq() != 2 {
		t.Fatalf("first seq = %d", newest.Seq())
	}
	removed := l.RemoveAfter(newest)
	if removed.IsNil() || removed.Seq() != 1 {
		t.Fatalf("RemoveAfter removed seq %v", removed)
	}
	// Next call: successor is "b", different key — no removal.
	if n := l.RemoveAfter(newest); !n.IsNil() {
		t.Error("RemoveAfter crossed key boundary")
	}
	if _, err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersSingleWriter(t *testing.T) {
	l := newList(t)
	const n = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Every key already written must be found.
				it := l.NewIterator()
				prev := -1
				for it.SeekToFirst(); it.Valid(); it.Next() {
					var i int
					fmt.Sscanf(string(it.Key()), "key-%d", &i)
					if i <= prev {
						t.Errorf("reader saw out-of-order keys %d after %d", i, prev)
						return
					}
					prev = i
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if err := l.Insert(k, bytes.Repeat([]byte("v"), 32), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSwizzleAfterClone(t *testing.T) {
	space := vaddr.NewSpace()
	src := space.NewRegion(1<<16, nil)
	l, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("value-%04d", i)
		if err := l.Insert([]byte(k), []byte(v), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
		golden[k] = v
	}
	// One-piece flush: clone the arena, then swizzle pointers.
	dst := space.Clone(src, nil)
	newHead := Swizzle(dst, src, l.Head())
	flushed := Attach(space, newHead, nil)
	// The flushed copy must contain everything, self-contained in dst.
	for k, v := range golden {
		got, _, _, ok := flushed.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("flushed.Get(%s) = %q ok=%v", k, got, ok)
		}
	}
	if n, err := flushed.CheckInvariants(); err != nil || n != 300 {
		t.Fatalf("flushed invariants: n=%d err=%v", n, err)
	}
	// No pointer in the clone may still reference the source region.
	for n := flushed.First(); !n.IsNil(); {
		for i := 0; i < n.Height(); i++ {
			next := n.nextAddr(i)
			if !next.IsNil() && next.Region() == src.Index() {
				t.Fatalf("unswizzled pointer to source region at %v level %d", n.Addr(), i)
			}
		}
		a := n.nextAddr(0)
		if a.IsNil() {
			break
		}
		n = flushed.Node(a)
	}
	// Source can now be released; the clone must stay intact.
	space.Release(src)
	for k, v := range golden {
		got, _, _, ok := flushed.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("after source release, flushed.Get(%s) broken", k)
		}
	}
}

// Property test: a skip list behaves exactly like a sorted map of
// (key → newest value).
func TestQuickModelEquivalence(t *testing.T) {
	type op struct {
		Key byte
		Val uint16
	}
	f := func(ops []op) bool {
		l := newList(t)
		model := map[string]string{}
		for i, o := range ops {
			k := fmt.Sprintf("k%03d", o.Key)
			v := fmt.Sprintf("v%05d", o.Val)
			if err := l.Insert([]byte(k), []byte(v), uint64(i+1), keys.KindSet); err != nil {
				return false
			}
			model[k] = v
		}
		// Compare Get against the model.
		for k, v := range model {
			got, _, _, ok := l.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		// Compare visible (newest per key) iteration order.
		var wantKeys []string
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		var gotKeys []string
		seen := map[string]bool{}
		it := l.NewIterator()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			k := string(it.Key())
			if !seen[k] {
				seen[k] = true
				gotKeys = append(gotKeys, k)
			}
		}
		if len(gotKeys) != len(wantKeys) {
			return false
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				return false
			}
		}
		_, err := l.CheckInvariants()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLargeValuesAcrossChunks(t *testing.T) {
	space := vaddr.NewSpace()
	r := space.NewRegion(1<<18, nil) // 256 KiB chunks
	l, _ := New(r)
	big := bytes.Repeat([]byte("x"), 64<<10) // 64 KiB values
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		if err := l.Insert(k, big, uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		v, _, _, ok := l.Get([]byte(fmt.Sprintf("key-%02d", i)))
		if !ok || !bytes.Equal(v, big) {
			t.Fatalf("big value %d corrupted", i)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	l := newList(b)
	k := make([]byte, 16)
	v := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(k, fmt.Sprintf("key-%012d", i))
		if err := l.Insert(k, v, uint64(i+1), keys.KindSet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	l := newList(b)
	const n = 100000
	for i := 0; i < n; i++ {
		l.Insert([]byte(fmt.Sprintf("key-%012d", i)), make([]byte, 100), uint64(i+1), keys.KindSet)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get([]byte(fmt.Sprintf("key-%012d", i%n)))
	}
}

func TestSpliceAPIsMatchSearchBased(t *testing.T) {
	// Drive the splice-based primitives the zero-copy merge uses and
	// verify they behave exactly like their searching counterparts.
	space := vaddr.NewSpace()
	src, _ := New(space.NewRegion(1<<20, nil))
	dst, _ := New(space.NewRegion(1<<20, nil))
	for i := 0; i < 100; i++ {
		src.Insert([]byte(fmt.Sprintf("s-%03d", i)), []byte("v"), uint64(100+i), keys.KindSet)
		dst.Insert([]byte(fmt.Sprintf("d-%03d", i)), []byte("v"), uint64(i+1), keys.KindSet)
	}
	// Move all src nodes into dst via precomputed splices.
	for {
		n := src.First()
		if n.IsNil() {
			break
		}
		var prev [MaxHeight]Node
		next := dst.FindSplice(n.Key(), n.Seq(), &prev)
		if !next.IsNil() && keys.Compare(next.Key(), next.Seq(), n.Key(), n.Seq()) < 0 {
			t.Fatal("FindSplice successor precedes target")
		}
		src.RemoveFirst()
		dst.InsertNodeWithSplice(n, &prev)
	}
	if dst.Count() != 200 {
		t.Fatalf("count = %d", dst.Count())
	}
	if _, err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remove half of them via splice-based removal.
	for i := 0; i < 100; i += 2 {
		k := []byte(fmt.Sprintf("s-%03d", i))
		var prev [MaxHeight]Node
		target := dst.FindSplice(k, uint64(100+i), &prev)
		if target.IsNil() || target.Seq() != uint64(100+i) {
			t.Fatalf("FindSplice missed %s", k)
		}
		dst.RemoveWithSplice(target, &prev)
	}
	if dst.Count() != 150 {
		t.Fatalf("count after removals = %d", dst.Count())
	}
	if _, err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, _, _, ok := dst.Get([]byte(fmt.Sprintf("s-%03d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("s-%03d present=%v want=%v", i, ok, want)
		}
	}
}

func TestBackwardIteration(t *testing.T) {
	l := newList(t)
	const n = 100
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := l.Insert(k, []byte("v"), uint64(i+1), keys.KindSet); err != nil {
			t.Fatal(err)
		}
	}
	it := l.NewIterator()
	it.SeekToLast()
	for i := n - 1; i >= 0; i-- {
		if !it.Valid() {
			t.Fatalf("iterator invalid at reverse position %d", i)
		}
		want := fmt.Sprintf("key-%03d", i)
		if string(it.Key()) != want {
			t.Fatalf("reverse[%d] = %q, want %q", i, it.Key(), want)
		}
		it.Prev()
	}
	if it.Valid() {
		t.Error("iterator valid past the front")
	}
	// Prev after Seek retreats correctly.
	it.Seek([]byte("key-050"))
	it.Prev()
	if !it.Valid() || string(it.Key()) != "key-049" {
		t.Fatalf("Prev after Seek = %q", it.Key())
	}
	// Empty list.
	empty := newList(t)
	eit := empty.NewIterator()
	eit.SeekToLast()
	if eit.Valid() {
		t.Error("SeekToLast valid on empty list")
	}
}

func TestBackwardThroughVersions(t *testing.T) {
	l := newList(t)
	l.Insert([]byte("a"), []byte("a1"), 1, keys.KindSet)
	l.Insert([]byte("a"), []byte("a2"), 2, keys.KindSet)
	l.Insert([]byte("b"), []byte("b3"), 3, keys.KindSet)
	it := l.NewIterator()
	it.SeekToLast()
	// Reverse order: (b,3), (a,1), (a,2) — key desc, then seq asc within
	// a key (the mirror of forward order).
	wantSeqs := []uint64{3, 1, 2}
	for i, w := range wantSeqs {
		if !it.Valid() || it.Seq() != w {
			t.Fatalf("reverse version %d: seq=%d want=%d", i, it.Seq(), w)
		}
		it.Prev()
	}
}
