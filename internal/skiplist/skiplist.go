package skiplist

import (
	"fmt"
	"sync/atomic"

	"miodb/internal/keys"
	"miodb/internal/vaddr"
)

// List is a skip list whose nodes live in vaddr regions. New nodes are
// allocated in the home region; after zero-copy merges a list may span
// nodes from many regions (tracked by the owning PMTable).
//
// Writers must be externally serialized (one writer at a time); readers
// are lock-free.
type List struct {
	space *vaddr.Space
	home  *vaddr.Region
	head  vaddr.Addr
	rnd   uint64

	count atomic.Int64 // live entries (volatile bookkeeping)
	bytes atomic.Int64 // user bytes (key+value) inserted
}

// New allocates a fresh list (head node) in the home region.
func New(home *vaddr.Region) (*List, error) {
	head, err := home.Alloc(int(nodeSize(MaxHeight, 0, 0)))
	if err != nil {
		return nil, err
	}
	home.PutUint64(head.Add(metaOff), packMeta(MaxHeight, keys.KindSet, 0, 0))
	home.PutUint64(head.Add(seqOff), 0)
	for i := 0; i < MaxHeight; i++ {
		home.PutUint64(head.Add(towerOff+int64(i)*8), uint64(vaddr.NilAddr))
	}
	home.ChargeWrite(int(nodeSize(MaxHeight, 0, 0)))
	return &List{
		space: home.Space(),
		home:  home,
		head:  head,
		rnd:   uint64(head) ^ 0x9e3779b97f4a7c15,
	}, nil
}

// Attach builds a List view over an existing head node (after a one-piece
// flush, a crash recovery, or a merge). home is where future allocations
// go; it may be nil for lists that only re-link existing nodes.
func Attach(space *vaddr.Space, head vaddr.Addr, home *vaddr.Region) *List {
	return &List{space: space, home: home, head: head, rnd: uint64(head) ^ 0x2545f4914f6cdd1d}
}

// Head returns the head node's address (persisted in table metadata).
func (l *List) Head() vaddr.Addr { return l.head }

// Space returns the address space the list lives in.
func (l *List) Space() *vaddr.Space { return l.space }

// Home returns the allocation region (may be nil).
func (l *List) Home() *vaddr.Region { return l.home }

// Count returns the number of live entries (approximate under concurrent
// merge; exact when quiescent).
func (l *List) Count() int64 { return l.count.Load() }

// SetCount overrides the bookkeeping count (used when attaching to a
// recovered list whose count is known from metadata or a scan).
func (l *List) SetCount(n int64) { l.count.Store(n) }

// UserBytes returns the total key+value bytes inserted.
func (l *List) UserBytes() int64 { return l.bytes.Load() }

// AddUserBytes adjusts the user-byte bookkeeping (used by merges).
func (l *List) AddUserBytes(n int64) { l.bytes.Add(n) }

// Node resolves a virtual address to a node reference. Single-region
// lists (memtables, fresh PMTables) resolve through their home region
// directly, so readers keep working even after the region is detached
// from the space (retired memtables may still be read by in-flight
// operations; the chunks stay alive until those drop their references).
func (l *List) Node(a vaddr.Addr) Node {
	if a.IsNil() {
		return Node{}
	}
	if l.home != nil && a.Region() == l.home.Index() {
		return Node{region: l.home, addr: a}
	}
	r := l.space.RegionOf(a)
	if r == nil {
		panic(fmt.Sprintf("skiplist: dangling node address %v", a))
	}
	return Node{region: r, addr: a}
}

func (l *List) headNode() Node { return l.Node(l.head) }

// randomHeight draws a tower height with branching factor 4 (p = 1/4),
// LevelDB's choice.
func (l *List) randomHeight() int {
	h := 1
	for h < MaxHeight {
		// xorshift64*
		l.rnd ^= l.rnd >> 12
		l.rnd ^= l.rnd << 25
		l.rnd ^= l.rnd >> 27
		if (l.rnd*0x2545f4914f6cdd1d)>>62 != 0 {
			break
		}
		h++
	}
	return h
}

// findSplice locates the insertion position for (key, seq): prev[i] is the
// rightmost node at level i ordered strictly before (key, seq), and the
// returned node is the overall successor (first node ≥ (key, seq)), or the
// nil node.
func (l *List) findSplice(key []byte, seq uint64, prev *[MaxHeight]Node) Node {
	cur := l.headNode()
	var next Node
	for level := MaxHeight - 1; level >= 0; level-- {
		for {
			nextAddr := cur.nextAddr(level)
			if nextAddr.IsNil() {
				next = Node{}
				break
			}
			next = l.Node(nextAddr)
			if keys.Compare(next.Key(), next.Seq(), key, seq) >= 0 {
				break
			}
			cur = next
		}
		if prev != nil {
			prev[level] = cur
		}
	}
	return next
}

// seekGE returns the first node ≥ (key, seq) without recording the splice.
func (l *List) seekGE(key []byte, seq uint64) Node {
	return l.findSplice(key, seq, nil)
}

// Insert adds a new entry. (key, seq) must be unique within the list —
// guaranteed by the store's monotonically increasing global sequence.
func (l *List) Insert(key, value []byte, seq uint64, kind keys.Kind) error {
	_, err := l.InsertEntry(key, value, seq, kind)
	return err
}

// InsertEntry is Insert returning the freshly linked node, so callers such
// as the repository's lazy-copy compaction can immediately unlink older
// duplicates behind it.
func (l *List) InsertEntry(key, value []byte, seq uint64, kind keys.Kind) (Node, error) {
	if err := validateKV(key, value); err != nil {
		return Node{}, err
	}
	if l.home == nil {
		return Node{}, fmt.Errorf("skiplist: insert into read-only list")
	}
	var prev [MaxHeight]Node
	next := l.findSplice(key, seq, &prev)
	if !next.IsNil() && next.Seq() == seq && keys.Compare(next.Key(), next.Seq(), key, seq) == 0 {
		return Node{}, fmt.Errorf("skiplist: duplicate (key, seq=%d)", seq)
	}

	height := l.randomHeight()
	n, err := l.newNode(key, value, seq, kind, height)
	if err != nil {
		return Node{}, err
	}
	// Link the fresh (unpublished) node to its successors, then publish
	// bottom-up with atomic stores so readers always see a consistent list.
	for i := 0; i < height; i++ {
		n.initNext(i, prev[i].nextAddr(i))
	}
	for i := 0; i < height; i++ {
		prev[i].setNext(i, n.addr)
	}
	l.count.Add(1)
	l.bytes.Add(int64(len(key) + len(value)))
	return n, nil
}

// FindGE returns the first node whose user key is ≥ key (the newest
// version of that key first), or the nil node.
func (l *List) FindGE(key []byte) Node { return l.seekGE(key, keys.MaxSeq) }

// SeekGE returns the first node ≥ (key, seq) in internal (key asc, seq
// desc) order, or the nil node. Re-seek iterators over actively merging
// tables use it to find their strict successor from the live list head
// on every step (SeekGE(k, s-1) is the first entry strictly after
// (k, s)), instead of chasing node pointers a migration may rewrite.
func (l *List) SeekGE(key []byte, seq uint64) Node { return l.seekGE(key, seq) }

// newNode allocates and fills a node in the home region, charging the
// device one bulk write for the fill.
func (l *List) newNode(key, value []byte, seq uint64, kind keys.Kind, height int) (Node, error) {
	size := int(nodeSize(height, len(key), len(value)))
	addr, err := l.home.Alloc(size)
	if err != nil {
		return Node{}, err
	}
	n := Node{region: l.home, addr: addr}
	l.home.PutUint64(addr.Add(metaOff), packMeta(height, kind, len(key), len(value)))
	l.home.PutUint64(addr.Add(seqOff), seq)
	keyAddr := addr.Add(n.keyOff(height))
	copy(l.home.Bytes(keyAddr, len(key)), key)
	if len(value) > 0 {
		copy(l.home.Bytes(keyAddr.Add(pad8(len(key))), len(value)), value)
	}
	l.home.ChargeWrite(size)
	return n, nil
}

// Get returns the newest version of key, if any version exists.
func (l *List) Get(key []byte) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	n := l.seekGE(key, keys.MaxSeq)
	if n.IsNil() {
		return nil, 0, 0, false
	}
	if keys.Compare(n.Key(), 0, key, 0) != 0 {
		return nil, 0, 0, false
	}
	return n.Value(), n.Seq(), n.Kind(), true
}

// GetBounded returns the newest version of key with sequence ≤ maxSeq, if
// one exists. Because entries order by (key asc, seq desc), the first node
// ≥ (key, maxSeq) is exactly that version when its user key matches.
// Snapshot reads use it to see through writes newer than their bound.
func (l *List) GetBounded(key []byte, maxSeq uint64) (value []byte, seq uint64, kind keys.Kind, ok bool) {
	n := l.seekGE(key, maxSeq)
	if n.IsNil() {
		return nil, 0, 0, false
	}
	if keys.Compare(n.Key(), 0, key, 0) != 0 {
		return nil, 0, 0, false
	}
	return n.Value(), n.Seq(), n.Kind(), true
}

// First returns the first node after the head, or the nil node.
func (l *List) First() Node {
	a := l.headNode().nextAddr(0)
	if a.IsNil() {
		return Node{}
	}
	return l.Node(a)
}

// Empty reports whether the list has no entries.
func (l *List) Empty() bool { return l.headNode().nextAddr(0).IsNil() }

// RemoveFirst unlinks and returns the first node. Because the first node's
// only predecessor at every tower level below its height is the head, the
// unlink is a top-down sequence of atomic head-pointer stores — the
// "remove from the newtable" step of zero-copy compaction. The removed
// node's own towers are left untouched so an in-flight reader standing on
// it keeps a valid forward path.
func (l *List) RemoveFirst() Node {
	head := l.headNode()
	firstAddr := head.nextAddr(0)
	if firstAddr.IsNil() {
		return Node{}
	}
	n := l.Node(firstAddr)
	for level := n.Height() - 1; level >= 0; level-- {
		head.setNext(level, n.nextAddr(level))
	}
	l.count.Add(-1)
	l.bytes.Add(-int64(n.KeyLen() + n.ValueLen()))
	return n
}

// InsertNode links an existing node (typically just removed from another
// list) into this list at its (key, seq) position — the pointer-only
// insertion of zero-copy compaction. The node's towers are rewritten with
// atomic stores; no key or value bytes move.
func (l *List) InsertNode(n Node) {
	var prev [MaxHeight]Node
	l.findSplice(n.Key(), n.Seq(), &prev)
	l.InsertNodeWithSplice(n, &prev)
}

// FindSplice computes the insertion splice for (key, seq) — the rightmost
// node before that position at every level — without mutating anything.
// Merges run it outside their reader-visible critical section: the search
// is the expensive part of a node migration (O(log n) NVM reads), while
// the actual relink is a handful of pointer stores. The splice stays
// valid as long as no other writer touches the list (the single-merger
// discipline).
func (l *List) FindSplice(key []byte, seq uint64, prev *[MaxHeight]Node) Node {
	return l.findSplice(key, seq, prev)
}

// InsertNodeWithSplice links n using a precomputed splice: pointer stores
// only, no searching.
func (l *List) InsertNodeWithSplice(n Node, prev *[MaxHeight]Node) {
	height := n.Height()
	for i := 0; i < height; i++ {
		n.setNext(i, prev[i].nextAddr(i))
	}
	for i := 0; i < height; i++ {
		prev[i].setNext(i, n.addr)
	}
	l.count.Add(1)
	l.bytes.Add(int64(n.KeyLen() + n.ValueLen()))
}

// RemoveWithSplice unlinks target using a precomputed splice (prev[i] is
// target's predecessor at every level where target is linked). The
// removed node's towers are not modified.
func (l *List) RemoveWithSplice(target Node, prev *[MaxHeight]Node) {
	for level := target.Height() - 1; level >= 0; level-- {
		if prev[level].nextAddr(level) == target.addr {
			prev[level].setNext(level, target.nextAddr(level))
		}
	}
	l.count.Add(-1)
	l.bytes.Add(-int64(target.KeyLen() + target.ValueLen()))
}

// Remove unlinks the node with exactly (key, seq), returning it, or the
// nil node if absent. The removed node's towers are not modified.
func (l *List) Remove(key []byte, seq uint64) Node {
	var prev [MaxHeight]Node
	next := l.findSplice(key, seq, &prev)
	if next.IsNil() || next.Seq() != seq || keys.Compare(next.Key(), 0, key, 0) != 0 {
		return Node{}
	}
	for level := next.Height() - 1; level >= 0; level-- {
		if prev[level].nextAddr(level) == next.addr {
			prev[level].setNext(level, next.nextAddr(level))
		}
	}
	l.count.Add(-1)
	l.bytes.Add(-int64(next.KeyLen() + next.ValueLen()))
	return next
}

// RemoveAfter unlinks the immediate level-0 successor of n if it has the
// same user key (an older version). It returns the removed node or the nil
// node. Used by merges to drop superseded duplicates that directly follow
// the newly inserted newest version.
func (l *List) RemoveAfter(n Node) Node {
	succAddr := n.nextAddr(0)
	if succAddr.IsNil() {
		return Node{}
	}
	succ := l.Node(succAddr)
	if keys.Compare(succ.Key(), 0, n.Key(), 0) != 0 {
		return Node{}
	}
	return l.Remove(succ.Key(), succ.Seq())
}

// CheckInvariants validates structural invariants, for tests: every level
// is sorted by (key asc, seq desc); every level-l chain is a subsequence of
// the level-0 chain; counts are consistent. It returns the number of
// level-0 nodes.
func (l *List) CheckInvariants() (int, error) {
	// Collect level-0 order and positions.
	pos := make(map[vaddr.Addr]int)
	var order []Node
	for n := l.First(); !n.IsNil(); {
		if _, dup := pos[n.addr]; dup {
			return 0, fmt.Errorf("skiplist: cycle at %v", n.addr)
		}
		pos[n.addr] = len(order)
		order = append(order, n)
		next := n.nextAddr(0)
		if next.IsNil() {
			break
		}
		n = l.Node(next)
	}
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if keys.Compare(a.Key(), a.Seq(), b.Key(), b.Seq()) >= 0 {
			return 0, fmt.Errorf("skiplist: level 0 order violated at index %d", i)
		}
	}
	for level := 1; level < MaxHeight; level++ {
		last := -1
		for a := l.headNode().nextAddr(level); !a.IsNil(); {
			n := l.Node(a)
			p, okPos := pos[a]
			if !okPos {
				return 0, fmt.Errorf("skiplist: level %d node %v not on level 0", level, a)
			}
			if p <= last {
				return 0, fmt.Errorf("skiplist: level %d not a subsequence at %v", level, a)
			}
			if n.Height() <= level {
				return 0, fmt.Errorf("skiplist: node %v height %d linked at level %d", a, n.Height(), level)
			}
			last = p
			a = n.nextAddr(level)
		}
	}
	return len(order), nil
}
