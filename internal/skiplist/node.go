// Package skiplist implements the arena-resident skip list used everywhere
// in the store: DRAM MemTables, persistent PMTables in the simulated NVM,
// the huge bottom-level repository, and NoveLSM's big NVM memtable.
//
// Nodes live inside vaddr regions and link to each other with 64-bit
// virtual addresses, never Go pointers, so a list survives being bulk-copied
// between devices (one-piece flushing) and its nodes can be re-linked into
// another list without moving bytes (zero-copy compaction). Entries order by
// (user key ascending, sequence descending) — see package keys.
//
// Concurrency model, matching LevelDB's memtable and the paper's PMTables:
// one writer at a time per list, any number of lock-free readers. Writers
// publish nodes with 8-byte atomic stores bottom-up; readers traverse with
// atomic loads. Removal never modifies the removed node's own towers, so a
// reader standing on an unlinked node keeps a valid path forward.
package skiplist

import (
	"fmt"

	"miodb/internal/keys"
	"miodb/internal/vaddr"
)

// MaxHeight bounds tower height. With p = 1/4 branching, 18 levels index
// ~4^18 ≈ 6.9×10¹⁰ entries — far beyond any simulated dataset.
const MaxHeight = 18

// Node layout inside an arena (all fields 8-byte aligned):
//
//	word 0  meta:   height(8) | kind(8) | keyLen(16) | valLen(24) | unused(8)
//	word 1  seq:    sequence number
//	word 2…2+h-1    next[level] — atomic vaddr.Addr links
//	…               key bytes, padded to 8
//	…               value bytes, padded to 8
const (
	metaOff  = 0
	seqOff   = 8
	towerOff = 16

	maxKeyLen   = 1<<16 - 1
	maxValueLen = 1<<24 - 1
)

func packMeta(height int, kind keys.Kind, keyLen, valLen int) uint64 {
	return uint64(height) |
		uint64(kind)<<8 |
		uint64(keyLen)<<16 |
		uint64(valLen)<<32
}

// Node is a resolved reference to a skip-list node: the owning region plus
// the node's virtual address. The zero Node is the nil node.
type Node struct {
	region *vaddr.Region
	addr   vaddr.Addr
}

// IsNil reports whether n is the nil node.
func (n Node) IsNil() bool { return n.addr.IsNil() }

// Addr returns the node's virtual address.
func (n Node) Addr() vaddr.Addr { return n.addr }

func (n Node) meta() uint64 { return n.region.Uint64(n.addr.Add(metaOff)) }

// Height returns the tower height.
func (n Node) Height() int { return int(n.meta() & 0xff) }

// Kind returns the entry kind (set or tombstone).
func (n Node) Kind() keys.Kind { return keys.Kind(n.meta() >> 8 & 0xff) }

// KeyLen returns the user-key length in bytes.
func (n Node) KeyLen() int { return int(n.meta() >> 16 & 0xffff) }

// ValueLen returns the value length in bytes.
func (n Node) ValueLen() int { return int(n.meta() >> 32 & 0xffffff) }

// Seq returns the sequence number.
func (n Node) Seq() uint64 { return n.region.Uint64(n.addr.Add(seqOff)) }

// keyOff returns the node-relative offset of the key bytes.
func (n Node) keyOff(height int) int64 { return towerOff + int64(height)*8 }

// Key returns the user key, charging the device a read of the key bytes.
// The slice aliases arena memory and must not be retained across region
// release.
func (n Node) Key() []byte {
	m := n.meta()
	h, kl := int(m&0xff), int(m>>16&0xffff)
	return n.region.Read(n.addr.Add(n.keyOff(h)), kl)
}

// Value returns the value bytes, charging the device for the read.
func (n Node) Value() []byte {
	m := n.meta()
	h, kl, vl := int(m&0xff), int(m>>16&0xffff), int(m>>32&0xffffff)
	return n.region.Read(n.addr.Add(n.keyOff(h)+pad8(kl)), vl)
}

// Size returns the node's total footprint in bytes.
func (n Node) Size() int64 {
	m := n.meta()
	h, kl, vl := int(m&0xff), int(m>>16&0xffff), int(m>>32&0xffffff)
	return nodeSize(h, kl, vl)
}

// towerAddr returns the address of the level-th next pointer.
func (n Node) towerAddr(level int) vaddr.Addr {
	return n.addr.Add(towerOff + int64(level)*8)
}

// NextAddr0 returns the level-0 successor address — exported for the
// zero-copy merge, which walks duplicates behind a just-inserted node.
func (n Node) NextAddr0() vaddr.Addr { return n.nextAddr(0) }

// nextAddr atomically loads the level-th successor address, charging an
// 8-byte device read (one pointer chase in NVM).
func (n Node) nextAddr(level int) vaddr.Addr {
	if m := n.region.Meter(); m != nil {
		m.OnRead(8)
	}
	return n.region.LoadAddr(n.towerAddr(level))
}

// setNext atomically publishes the level-th successor (an 8-byte NVM
// write — the unit of zero-copy compaction traffic).
func (n Node) setNext(level int, v vaddr.Addr) {
	n.region.StoreAddr(n.towerAddr(level), v)
}

// initNext initializes a tower slot on an unpublished node without
// metering an extra write (the node fill was charged in bulk).
func (n Node) initNext(level int, v vaddr.Addr) {
	n.region.PutUint64(n.towerAddr(level), uint64(v))
}

func nodeSize(height, keyLen, valLen int) int64 {
	return towerOff + int64(height)*8 + pad8(keyLen) + pad8(valLen)
}

func pad8(n int) int64 { return int64(n+7) &^ 7 }

func validateKV(key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("skiplist: empty key")
	}
	if len(key) > maxKeyLen {
		return fmt.Errorf("skiplist: key length %d exceeds max %d", len(key), maxKeyLen)
	}
	if len(value) > maxValueLen {
		return fmt.Errorf("skiplist: value length %d exceeds max %d", len(value), maxValueLen)
	}
	return nil
}
