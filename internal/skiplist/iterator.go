package skiplist

import (
	"miodb/internal/keys"
	"miodb/internal/vaddr"
)

// Iterator walks a list in (key asc, seq desc) order. It is safe to use
// concurrently with a writer under the list's single-writer discipline;
// entries inserted after a position was taken may or may not be observed.
type Iterator struct {
	l *List
	n Node
}

// NewIterator returns an unpositioned iterator (Valid() == false).
func (l *List) NewIterator() *Iterator { return &Iterator{l: l} }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return !it.n.IsNil() }

// SeekToFirst positions on the first entry.
func (it *Iterator) SeekToFirst() { it.n = it.l.First() }

// Seek positions on the first entry with user key ≥ key (its newest
// version first).
func (it *Iterator) Seek(key []byte) { it.n = it.l.seekGE(key, keys.MaxSeq) }

// Next advances to the following entry.
func (it *Iterator) Next() {
	if it.n.IsNil() {
		return
	}
	a := it.n.nextAddr(0)
	if a.IsNil() {
		it.n = Node{}
		return
	}
	it.n = it.l.Node(a)
}

// Key returns the current user key (aliases arena memory).
func (it *Iterator) Key() []byte { return it.n.Key() }

// Value returns the current value (aliases arena memory).
func (it *Iterator) Value() []byte { return it.n.Value() }

// Seq returns the current sequence number.
func (it *Iterator) Seq() uint64 { return it.n.Seq() }

// Kind returns the current entry kind.
func (it *Iterator) Kind() keys.Kind { return it.n.Kind() }

// Node returns the current node reference.
func (it *Iterator) Node() Node { return it.n }

// Swizzle rewrites every tower pointer of a list that was bulk-copied from
// src into dst (vaddr.Space.Clone preserves offsets), rebasing addresses
// from src's region to dst's. It returns the rebased head address.
//
// This is the paper's pointer swizzling (§4.2): after one-piece flushing,
// "all data nodes in the PMTable have the same address offset relative to
// the MemTable. We can update all pointers in the PMTable according to the
// relative address." It runs in the background; the copied list is not
// published to readers until Swizzle returns. Each rewritten pointer is an
// 8-byte metered NVM write.
func Swizzle(dst, src *vaddr.Region, oldHead vaddr.Addr) vaddr.Addr {
	head := vaddr.Rebase(oldHead, src, dst)
	cur := head
	for !cur.IsNil() {
		meta := dst.Uint64(cur.Add(metaOff))
		height := int(meta & 0xff)
		for i := 0; i < height; i++ {
			slot := cur.Add(towerOff + int64(i)*8)
			old := vaddr.Addr(dst.Uint64(slot))
			if nw := vaddr.Rebase(old, src, dst); nw != old {
				dst.Store64(slot, uint64(nw))
			}
		}
		cur = vaddr.Addr(dst.Uint64(cur.Add(towerOff))) // level-0 next, already rebased
	}
	return head
}

// findLast returns the last node of the list, or the nil node. Skip lists
// are forward-linked, so the search descends the towers rightward —
// O(log n), the same technique LevelDB's memtable uses for backward
// iteration.
func (l *List) findLast() Node {
	cur := l.headNode()
	for level := MaxHeight - 1; level >= 0; level-- {
		for {
			next := cur.nextAddr(level)
			if next.IsNil() {
				break
			}
			cur = l.Node(next)
		}
	}
	if cur.addr == l.head {
		return Node{}
	}
	return cur
}

// findLT returns the rightmost node ordered strictly before (key, seq),
// or the nil node.
func (l *List) findLT(key []byte, seq uint64) Node {
	cur := l.headNode()
	for level := MaxHeight - 1; level >= 0; level-- {
		for {
			nextAddr := cur.nextAddr(level)
			if nextAddr.IsNil() {
				break
			}
			next := l.Node(nextAddr)
			if keys.Compare(next.Key(), next.Seq(), key, seq) >= 0 {
				break
			}
			cur = next
		}
	}
	if cur.addr == l.head {
		return Node{}
	}
	return cur
}

// SeekToLast positions on the last entry.
func (it *Iterator) SeekToLast() { it.n = it.l.findLast() }

// Prev retreats to the preceding entry. Each step costs a fresh O(log n)
// descent (the list is forward-linked only); backward scans are therefore
// log-factor slower than forward scans, as in LevelDB's memtable.
func (it *Iterator) Prev() {
	if it.n.IsNil() {
		return
	}
	it.n = it.l.findLT(it.n.Key(), it.n.Seq())
}
