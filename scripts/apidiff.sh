#!/bin/sh
# apidiff.sh — flag public-API breaks in the root miodb package against a
# baseline revision (the previous release tag, or the previous commit when
# no tag exists yet).
#
# Behavior is deliberately soft by default so `make check` works on a
# machine without the tool or the network to fetch it:
#
#   - apidiff binary missing  -> print how to get it, exit 0 (skip).
#     Set APIDIFF_INSTALL=1 (CI does) to `go install` it first.
#   - incompatible changes    -> report them; exit 1 only when
#     APIDIFF_STRICT=1 (CI does), otherwise warn and exit 0.
#
# Only the root package is compared: everything under internal/ is
# invisible to importers and free to change.
set -u

GO=${GO:-go}
repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo" || exit 1

# Locate (or, on request, install) the apidiff tool.
APIDIFF=$(command -v apidiff || true)
if [ -z "$APIDIFF" ]; then
    gobin=$("$GO" env GOPATH)/bin
    [ -x "$gobin/apidiff" ] && APIDIFF="$gobin/apidiff"
fi
if [ -z "$APIDIFF" ] && [ "${APIDIFF_INSTALL:-}" = "1" ]; then
    echo "apidiff: installing golang.org/x/exp/cmd/apidiff..."
    "$GO" install golang.org/x/exp/cmd/apidiff@latest || exit 1
    APIDIFF=$("$GO" env GOPATH)/bin/apidiff
fi
if [ -z "$APIDIFF" ]; then
    echo "apidiff: tool not installed; skipping public-API check"
    echo "apidiff: (go install golang.org/x/exp/cmd/apidiff@latest, or APIDIFF_INSTALL=1)"
    exit 0
fi

# Baseline: previous tag when the repo has one, else the previous commit.
base=${APIDIFF_BASE:-$(git describe --tags --abbrev=0 2>/dev/null || true)}
if [ -z "$base" ]; then
    base=$(git rev-parse --verify -q HEAD~1) || {
        echo "apidiff: no baseline revision available; skipping"
        exit 0
    }
fi

tmp=$(mktemp -d)
trap 'git worktree remove --force "$tmp/base" >/dev/null 2>&1; rm -rf "$tmp"' EXIT

git worktree add --detach "$tmp/base" "$base" >/dev/null 2>&1 || {
    echo "apidiff: cannot check out baseline $base; skipping"
    exit 0
}

echo "apidiff: comparing public API of ./ against $base"
(cd "$tmp/base" && "$APIDIFF" -w "$tmp/old.export" .) || exit 1
out=$("$APIDIFF" "$tmp/old.export" . 2>&1) || exit 1
[ -n "$out" ] && printf '%s\n' "$out"

if printf '%s' "$out" | grep -q '^Incompatible changes:'; then
    if [ "${APIDIFF_STRICT:-}" = "1" ]; then
        echo "apidiff: FAIL — incompatible public-API changes vs $base"
        exit 1
    fi
    echo "apidiff: WARNING — incompatible public-API changes vs $base (APIDIFF_STRICT=1 to fail)"
else
    echo "apidiff: OK — no incompatible changes vs $base"
fi
exit 0
