package miodb

import (
	"miodb/internal/core"
	"miodb/internal/vlog"
)

// The public error surface, consolidated. Every sentinel here is the
// same value the internal layers use, so errors.Is works across the
// whole stack — a core read, a sharded router, the network client
// mapping wire statuses, and this package all agree on identity.

// ErrNotFound is returned by Get (and per-key by GetMulti) when a key
// has no live value. Deleting an absent key is not an error; reading
// one is this.
var ErrNotFound = core.ErrNotFound

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = core.ErrClosed

// ErrSnapshotClosed is returned by reads on a closed Snapshot.
var ErrSnapshotClosed = core.ErrSnapshotClosed

// ErrSnapshotUnsupported is returned by Snapshot on SSD-mode stores
// (Options.UseSSD): the on-SSD compactor rewrites tables in place with
// no version pinning, so a long-lived consistent view cannot be
// guaranteed there.
var ErrSnapshotUnsupported = core.ErrSnapshotUnsupported

// ErrDegraded wraps the first background failure once a store has latched
// itself read-only: writes are refused, reads keep serving the last
// consistent state. errors.Is(err, ErrDegraded) identifies the mode; Err
// returns the latched cause. On a sharded store only the failed shard
// refuses writes; healthy shards keep serving their slice of the
// keyspace.
var ErrDegraded = core.ErrDegraded

// ErrValueLogCorrupt reports a value-log pointer that failed to resolve
// during a read: an unknown segment, an out-of-bounds address, or a
// checksum mismatch. It indicates an invariant violation (corrupted
// media or a bug), never an expected runtime condition — a healthy
// store's garbage collector never reclaims a segment a live reader,
// snapshot, or pinned version can still reference.
var ErrValueLogCorrupt = vlog.ErrCorrupt
