// Package miodb is a key-value store for hybrid DRAM/NVM memory systems,
// reproducing MioDB from "Revisiting Log-Structured Merging for KV Stores
// in Hybrid Memory Systems" (ASPLOS 2023).
//
// MioDB replaces the on-disk SSTables of an LSM-tree with byte-addressable
// persistent skip lists (PMTables) and rebuilds log-structured merging
// around what fast NVM makes possible:
//
//   - One-piece flushing: a full DRAM MemTable is persisted with a single
//     bulk copy plus background pointer swizzling.
//   - An elastic, unbounded multi-level NVM buffer whose levels compact by
//     zero-copy merging — pointer updates only, no data movement.
//   - Parallel per-level compaction threads, so flushing never stalls.
//   - Lazy-copy compaction into a huge bottom-level repository skip list,
//     bounding write amplification near 3× (WAL + flush + lazy copy).
//   - Mergeable bloom filters and deep levels for read performance.
//
// Because no NVM hardware is assumed, the store runs on a simulated
// byte-addressable NVM device with calibrated latency/bandwidth ratios and
// full traffic accounting; see DESIGN.md for the substitution argument.
//
// Quick start:
//
//	db, err := miodb.Open(nil)
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
package miodb

import (
	"miodb/internal/core"
	"miodb/internal/stats"
)

// ErrNotFound is returned by Get when a key has no live value.
var ErrNotFound = core.ErrNotFound

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = core.ErrClosed

// ErrDegraded wraps the first background failure once a store has latched
// itself read-only: writes are refused, reads keep serving the last
// consistent state. errors.Is(err, ErrDegraded) identifies the mode; Err
// returns the latched cause.
var ErrDegraded = core.ErrDegraded

// Options configures a store. The zero value (or nil) uses the paper's
// configuration scaled for a single machine: 64 KB MemTables, 8
// elastic-buffer levels, 16 bloom bits per key, WAL on.
type Options struct {
	// MemTableSize is the DRAM write buffer capacity in bytes.
	MemTableSize int64
	// Levels is the number of elastic-buffer levels (compaction threads).
	Levels int
	// BloomBitsPerKey sizes the per-PMTable bloom filters.
	BloomBitsPerKey int
	// DisableWAL turns off write-ahead logging (data in the DRAM buffer
	// is then lost on crash).
	DisableWAL bool
	// UseSSD enables the DRAM-NVM-SSD hierarchy: the bottom repository
	// becomes leveled SSTables on a simulated SSD.
	UseSSD bool
	// Simulate enables device latency injection so measured performance
	// reflects the modeled hardware; leave false for functional use.
	Simulate bool
	// TimeScale scales injected latencies (1.0 = full model).
	TimeScale float64
	// GroupCommit selects the leader-based group-commit write pipeline
	// for concurrent writers (nil/true = on, the default). Bool(false)
	// restores the serialized per-record write path.
	GroupCommit *bool
}

// Bool returns a pointer to b, for optional boolean options.
func Bool(b bool) *bool { return core.Bool(b) }

func (opts *Options) coreOptions() core.Options {
	var co core.Options
	if opts != nil {
		co.MemTableSize = opts.MemTableSize
		co.Levels = opts.Levels
		co.BloomBitsPerKey = opts.BloomBitsPerKey
		co.DisableWAL = opts.DisableWAL
		co.Simulate = opts.Simulate
		co.TimeScale = opts.TimeScale
		co.GroupCommit = opts.GroupCommit
	}
	return co
}

// Stats is the store's cost accounting snapshot: operation counts, stall
// time, flush/compaction time, device traffic, and write amplification.
type Stats = stats.Snapshot

// DB is a MioDB store.
type DB struct {
	inner *core.DB
}

// Open creates a store. opts may be nil for defaults.
func Open(opts *Options) (*DB, error) {
	co := opts.coreOptions()
	if opts != nil && opts.UseSSD {
		co.SSD = &core.SSDOptions{}
	}
	inner, err := core.Open(co)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Put stores a key-value pair. The value is durable (in the simulated
// NVM's write-ahead log) when Put returns.
func (db *DB) Put(key, value []byte) error { return db.inner.Put(key, value) }

// Get returns the newest value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.inner.Get(key) }

// Delete removes key. Deleting an absent key is not an error.
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// Batch collects writes for atomic application via Write.
type Batch = core.Batch

// Write applies every operation in the batch atomically: consecutive
// sequence numbers, logged together, all-or-nothing across a crash.
func (db *DB) Write(b *Batch) error { return db.inner.Write(b) }

// Scan calls fn for up to limit live keys ≥ start, in order; fn returning
// false stops the scan. limit ≤ 0 scans to the end. The key and value
// slices passed to fn alias store memory and are only valid for the
// duration of the callback; copy them to retain.
func (db *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	return db.inner.Scan(start, limit, fn)
}

// NewIterator returns an ordered iterator over live keys. Callers must
// Close it to release its snapshot.
func (db *DB) NewIterator() *core.Iterator { return db.inner.NewIterator() }

// Flush forces the DRAM buffer out and waits for all background
// compaction to drain.
func (db *DB) Flush() error { return db.inner.FlushAll() }

// Checkpoint writes the store's persistent state to a file (atomically).
// On real NVM hardware the memory itself is the durable medium; under
// simulation, checkpoint images provide process-level durability:
// OpenImage restores a store from one through the crash-recovery path.
func (db *DB) Checkpoint(path string) error { return db.inner.Checkpoint(path) }

// OpenImage restores a store from a checkpoint file written by
// Checkpoint. opts must carry the same structural settings (Levels) the
// checkpointed store used; nil means defaults.
func OpenImage(path string, opts *Options) (*DB, error) {
	inner, err := core.OpenImage(path, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Stats returns the store's cost accounting.
func (db *DB) Stats() Stats { return db.inner.Stats() }

// Err reports the store's latched background error, if any. A non-nil
// result wraps ErrDegraded: a flush, compaction, or manifest append hit a
// persistent device fault, the store refused to release any state the
// last recoverable image depends on, and it now serves reads only.
func (db *DB) Err() error { return db.inner.Err() }

// Close drains background work and shuts the store down. Callers must
// stop issuing operations first.
func (db *DB) Close() error { return db.inner.Close() }
