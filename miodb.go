// Package miodb is a key-value store for hybrid DRAM/NVM memory systems,
// reproducing MioDB from "Revisiting Log-Structured Merging for KV Stores
// in Hybrid Memory Systems" (ASPLOS 2023).
//
// MioDB replaces the on-disk SSTables of an LSM-tree with byte-addressable
// persistent skip lists (PMTables) and rebuilds log-structured merging
// around what fast NVM makes possible:
//
//   - One-piece flushing: a full DRAM MemTable is persisted with a single
//     bulk copy plus background pointer swizzling.
//   - An elastic, unbounded multi-level NVM buffer whose levels compact by
//     zero-copy merging — pointer updates only, no data movement.
//   - Parallel per-level compaction threads, so flushing never stalls.
//   - Lazy-copy compaction into a huge bottom-level repository skip list,
//     bounding write amplification near 3× (WAL + flush + lazy copy).
//   - Mergeable bloom filters and deep levels for read performance.
//
// Beyond the paper, the store scales horizontally: Options{Shards: N}
// hash-partitions the keyspace over N independent engines (per-shard
// MemTable, WAL, and compaction pipeline) behind the same API, with
// merged scans and aggregated stats. See DESIGN.md §9.
//
// Because no NVM hardware is assumed, the store runs on a simulated
// byte-addressable NVM device with calibrated latency/bandwidth ratios and
// full traffic accounting; see DESIGN.md for the substitution argument.
//
// The read API is versioned on top of the engine's epoch substrate: every
// read — Get, GetMulti, Scan, NewIterator — runs against a pinned
// immutable version of the store, and Snapshot exposes that pin as a
// first-class handle: an O(1), arbitrarily long-lived consistent view
// (consistent across shards) that later writes, flushes, and compactions
// never disturb. DeleteRange completes the write side with O(1) logical
// range deletion via range tombstones, honored by every read path and
// reclaimed lazily by the compaction pipeline. See DESIGN.md §13.
//
// Quick start:
//
//	db, err := miodb.Open(nil)
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//
//	snap, _ := db.Snapshot()          // consistent view, O(1)
//	db.Put([]byte("k"), []byte("v2")) // invisible to snap
//	old, _ := snap.Get([]byte("k"))   // still "v"
//	snap.Close()
//
//	vals, errs := db.GetMulti([][]byte{[]byte("a"), []byte("b")})
//	_ = db.DeleteRange([]byte("user#"), []byte("user$")) // drop a prefix
//	_, _ = vals, errs
package miodb

import (
	"fmt"

	"miodb/internal/core"
	"miodb/internal/kvstore"
	"miodb/internal/shard"
	"miodb/internal/stats"
)

// The error sentinels (ErrNotFound, ErrClosed, ErrSnapshotClosed,
// ErrSnapshotUnsupported, ErrDegraded, ErrValueLogCorrupt) live in
// errors.go.

// Options configures a store. The zero value (or nil) uses the paper's
// configuration scaled for a single machine: 64 KB MemTables, 8
// elastic-buffer levels, 16 bloom bits per key, WAL on, one shard.
//
// Open validates options and returns a descriptive error for invalid
// values (negative sizes, out-of-range level or shard counts) instead of
// silently clamping them; zero values always mean "use the default".
type Options struct {
	// MemTableSize is the DRAM write buffer capacity in bytes (per shard
	// when Shards > 1). 0 selects the default; negative is invalid.
	MemTableSize int64
	// Levels is the number of elastic-buffer levels (compaction threads)
	// per shard. 0 selects the default (8); otherwise it must be in
	// [2, 64].
	Levels int
	// BloomBitsPerKey sizes the per-PMTable bloom filters. 0 selects the
	// default (16); negative disables filtering (a read-path ablation).
	BloomBitsPerKey int
	// Shards hash-partitions the keyspace over this many independent
	// engines — per-shard MemTable, WAL, elastic buffer, and compaction
	// pipeline — for multi-core scaling. 0 or 1 selects the single-engine
	// path (exactly the unsharded code path); negative is invalid.
	// Write batches are atomic per shard, not across shards; see
	// DESIGN.md §9.
	Shards int
	// DisableWAL turns off write-ahead logging (data in the DRAM buffer
	// is then lost on crash).
	DisableWAL bool
	// UseSSD enables the DRAM-NVM-SSD hierarchy: the bottom repository
	// becomes leveled SSTables on a simulated SSD. SSD-mode stores
	// cannot be checkpointed or restored (images hold the NVM state
	// only); Checkpoint and OpenImage refuse rather than silently
	// writing or restoring an incomplete configuration.
	UseSSD bool
	// Simulate enables device latency injection so measured performance
	// reflects the modeled hardware; leave false for functional use.
	Simulate bool
	// TimeScale scales injected latencies (1.0 = full model). 0 selects
	// the default; negative is invalid.
	TimeScale float64

	// MemoryBudget is the global DRAM memtable budget in bytes, divided
	// across all shards: with Shards = N every shard's memtable starts at
	// MemoryBudget/N (overriding MemTableSize), and with one shard it is
	// simply the memtable size. 0 keeps the per-shard MemTableSize
	// semantics; negative is invalid. The budget must leave each shard at
	// least 4 KB.
	MemoryBudget int64

	// Governor enables the adaptive memory governor (requires Shards ≥
	// 2): a background loop that continuously rebalances the global
	// memtable budget across shards by write heat — hot shards grow
	// toward fewer flushes, cold shards shrink toward a floor, applied
	// only at rotation boundaries, under the budget, with hysteresis.
	// The budget is MemoryBudget when set, else Shards × the (defaulted)
	// MemTableSize, so enabling the governor never changes total memory.
	// Nil — the default — keeps today's static split byte for byte.
	// See DESIGN.md §12.
	Governor *GovernorOptions

	// ValueLog enables key-value separation: values at or above
	// ValueLogOptions.Threshold are appended to a segmented value log and
	// the LSM structure stores a compact 16-byte address in their place,
	// so flushes and compactions move pointers instead of value bytes —
	// the write-amplification win WiscKey-style separation is known for.
	// Dead log space is garbage-collected by relocating still-live values,
	// with reclamation deferred past every open snapshot and in-flight
	// read. Nil — the default — keeps the engine byte-for-byte
	// value-inline. See DESIGN.md §14.
	ValueLog *ValueLogOptions

	// Admission bounds the write path's elastic-buffer backlog (per shard
	// when Shards > 1). Nil — the default — is the paper's stall-free
	// behavior: writers rotate full MemTables into the unbounded elastic
	// buffer without ever waiting, and the backlog shows up only in the
	// Stats gauges. A non-nil config enables soft throttling and/or hard
	// blocking at the configured thresholds, with every wait measured
	// into the stall counters. See DESIGN.md §11.
	Admission *AdmissionOptions

	// DisableGroupCommit turns off the leader-based group-commit write
	// pipeline, restoring the serialized per-record write path (an
	// ablation for comparison; the pipeline is on by default).
	DisableGroupCommit bool
	// DisableEpochReads turns off the lock-free read path, restoring
	// mutex-refcount version pinning (an ablation for comparison; epoch
	// reads are on by default).
	DisableEpochReads bool
}

// GovernorOptions tunes the adaptive memory governor (tick interval,
// per-shard floor, hysteresis, EWMA weight); the zero value uses the
// defaults. The budget itself comes from Options.MemoryBudget — a
// Budget set here directly takes precedence, for parity with
// shard.OpenGoverned. See shard.GovernorOptions for field semantics.
type GovernorOptions = shard.GovernorOptions

// AdmissionOptions configures backlog-aware write admission control: a
// soft band that injects per-commit throttling delays and a hard band
// that blocks the committing writer until flush progress. Thresholds of
// zero disable the corresponding trigger; see core.AdmissionOptions for
// field semantics.
type AdmissionOptions = core.AdmissionOptions

// ValueLogOptions configures key-value separation (Options.ValueLog).
// Zero fields select defaults: Threshold 1 KiB, SegmentSize 4× the
// memtable, GCDeadRatio 0.5. OnSSD places segments on the simulated SSD
// tier (the large-value offload arm); SSD-resident value logs are not
// covered by Checkpoint images or crash recovery, and both refuse rather
// than silently dropping the data. See core.ValueLogOptions for field
// semantics.
type ValueLogOptions = core.ValueLogOptions

// maxLevels bounds Options.Levels: beyond this each extra level is one
// more idle compaction goroutine per shard with no measurable benefit
// (the paper settles on 8; see Fig 9).
const maxLevels = 64

// maxShards bounds Options.Shards: each shard is a full engine with its
// own background goroutines and memory floor.
const maxShards = 1024

// validate rejects invalid option values with descriptive errors. Zero
// values are always valid and mean "use the default".
func (opts *Options) validate() error {
	if opts == nil {
		return nil
	}
	if opts.MemTableSize < 0 {
		return fmt.Errorf("miodb: invalid MemTableSize %d: must be ≥ 0 (0 selects the default)", opts.MemTableSize)
	}
	if opts.Levels != 0 && (opts.Levels < 2 || opts.Levels > maxLevels) {
		return fmt.Errorf("miodb: invalid Levels %d: must be 0 (default) or in [2, %d]", opts.Levels, maxLevels)
	}
	if opts.TimeScale < 0 {
		return fmt.Errorf("miodb: invalid TimeScale %g: must be ≥ 0 (0 selects the default)", opts.TimeScale)
	}
	if opts.Shards < 0 || opts.Shards > maxShards {
		return fmt.Errorf("miodb: invalid Shards %d: must be in [0, %d] (0 and 1 select the single-engine path)", opts.Shards, maxShards)
	}
	if opts.MemoryBudget < 0 {
		return fmt.Errorf("miodb: invalid MemoryBudget %d: must be ≥ 0 (0 keeps per-shard MemTableSize)", opts.MemoryBudget)
	}
	if opts.MemoryBudget > 0 {
		if per := opts.MemoryBudget / int64(opts.shardCount()); per < 4<<10 {
			return fmt.Errorf("miodb: MemoryBudget %d over %d shards leaves %d B per shard (need ≥ 4096)", opts.MemoryBudget, opts.shardCount(), per)
		}
	}
	if g := opts.Governor; g != nil {
		if opts.shardCount() < 2 {
			return fmt.Errorf("miodb: Governor requires Shards ≥ 2: rebalancing one global budget needs more than one shard (use MemoryBudget alone to size a single engine)")
		}
		if g.Budget < 0 || g.FloorBytes < 0 || g.Interval < 0 || g.HysteresisFrac < 0 || g.Alpha < 0 || g.Alpha > 1 {
			return fmt.Errorf("miodb: invalid Governor options: Budget/FloorBytes/Interval/HysteresisFrac must be ≥ 0 and Alpha in [0, 1] (0 selects each default)")
		}
	}
	if vc := opts.ValueLog; vc != nil {
		if vc.Threshold < 0 {
			return fmt.Errorf("miodb: invalid ValueLog.Threshold %d: must be ≥ 0 (0 selects the default)", vc.Threshold)
		}
		if vc.SegmentSize < 0 {
			return fmt.Errorf("miodb: invalid ValueLog.SegmentSize %d: must be ≥ 0 (0 selects the default)", vc.SegmentSize)
		}
		if vc.GCDeadRatio < 0 || vc.GCDeadRatio > 1 {
			return fmt.Errorf("miodb: invalid ValueLog.GCDeadRatio %g: must be in [0, 1] (0 selects the default)", vc.GCDeadRatio)
		}
	}
	if ac := opts.Admission; ac != nil {
		if ac.SoftImms < 0 || ac.HardImms < 0 || ac.SoftL0Bytes < 0 || ac.HardL0Bytes < 0 {
			return fmt.Errorf("miodb: invalid Admission thresholds: must be ≥ 0 (0 disables a trigger)")
		}
		if ac.SlowdownDelay < 0 {
			return fmt.Errorf("miodb: invalid Admission.SlowdownDelay %v: must be ≥ 0 (0 selects the default)", ac.SlowdownDelay)
		}
	}
	return nil
}

// coreOptions is the single opts → core.Options translation, shared by
// Open and OpenImage so the two entry points can never drift (OpenImage
// once dropped UseSSD on the floor). opts may be nil.
func (opts *Options) coreOptions() core.Options {
	var co core.Options
	if opts == nil {
		return co
	}
	co.MemTableSize = opts.MemTableSize
	co.Levels = opts.Levels
	co.BloomBitsPerKey = opts.BloomBitsPerKey
	co.DisableWAL = opts.DisableWAL
	co.Admission = opts.Admission
	co.ValueLog = opts.ValueLog
	co.Simulate = opts.Simulate
	co.TimeScale = opts.TimeScale
	if opts.DisableGroupCommit {
		co.GroupCommit = core.Bool(false)
	}
	if opts.DisableEpochReads {
		co.EpochReads = core.Bool(false)
	}
	if opts.UseSSD {
		co.SSD = &core.SSDOptions{}
	}
	return co
}

func (opts *Options) shardCount() int {
	if opts == nil {
		return 1
	}
	if opts.Shards < 1 {
		return 1
	}
	return opts.Shards
}

// Stats is the store's cost accounting snapshot: operation counts, stall
// time, flush/compaction time, device traffic, and write amplification.
// For a sharded store the top-level fields aggregate all shards and
// Stats.Shards carries the per-shard breakdown.
type Stats = stats.Snapshot

// Op indexes Stats.OpLatencies: Stats().OpLatencies[OpGet].P999 is the
// measured Get tail in microseconds. OpPut and OpDelete are per-record
// commit latencies (queue wait + WAL + memtable insert); OpCommit is the
// whole Write/WriteBatch commit, one sample per batch.
type Op = stats.Op

const (
	OpPut    = stats.OpPut
	OpGet    = stats.OpGet
	OpDelete = stats.OpDelete
	OpScan   = stats.OpScan
	OpCommit = stats.OpCommit
	NumOps   = stats.NumOps
)

// DB is a MioDB store: a single engine, or — with Options{Shards: N} —
// a hash-partitioned router over N independent engines behind the same
// methods.
type DB struct {
	single *core.DB      // the single-engine path (Shards ≤ 1)
	router *shard.Router // the sharded path (Shards > 1)
	ssd    bool          // opened with UseSSD: not checkpointable
}

// Open creates a store. opts may be nil for defaults. Invalid options
// are rejected with a descriptive error.
func Open(opts *Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	co := opts.coreOptions()
	ssd := opts != nil && opts.UseSSD
	if n := opts.shardCount(); n > 1 {
		if opts.Governor != nil {
			// Copy so Open never mutates the caller's literal; the
			// budget knob is Options.MemoryBudget unless the caller set
			// one on the governor directly.
			g := *opts.Governor
			if g.Budget == 0 {
				g.Budget = opts.MemoryBudget
			}
			router, err := shard.OpenGoverned(n, co, &g)
			if err != nil {
				return nil, err
			}
			return &DB{router: router, ssd: ssd}, nil
		}
		if opts.MemoryBudget > 0 {
			// Static even split of the budget, same total memory as the
			// governed configuration.
			co.MemTableSize = opts.MemoryBudget / int64(n)
		}
		router, err := shard.Open(n, co)
		if err != nil {
			return nil, err
		}
		return &DB{router: router, ssd: ssd}, nil
	}
	if opts != nil && opts.MemoryBudget > 0 {
		co.MemTableSize = opts.MemoryBudget
	}
	inner, err := core.Open(co)
	if err != nil {
		return nil, err
	}
	return &DB{single: inner, ssd: ssd}, nil
}

// Put stores a key-value pair. The value is durable (in the simulated
// NVM's write-ahead log) when Put returns.
func (db *DB) Put(key, value []byte) error {
	if db.router != nil {
		return db.router.Put(key, value)
	}
	return db.single.Put(key, value)
}

// Get returns the newest value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	if db.router != nil {
		return db.router.Get(key)
	}
	return db.single.Get(key)
}

// Delete removes key. Deleting an absent key is not an error.
func (db *DB) Delete(key []byte) error {
	if db.router != nil {
		return db.router.Delete(key)
	}
	return db.single.Delete(key)
}

// DeleteRange deletes every key k with start ≤ k < end in one O(1)
// logical operation; an empty end deletes every key ≥ start, and an
// otherwise empty range is a no-op. The range tombstone is durable (WAL)
// when DeleteRange returns and is honored by every read path immediately;
// the covered entries are physically reclaimed later by the normal
// compaction pipeline. Snapshots taken before the DeleteRange keep
// reading the covered keys. On a sharded store the tombstone is broadcast
// to every shard (a range spans hash partitions); like a cross-shard
// batch, live readers may observe the broadcast mid-way, but a Snapshot
// always sees it entirely applied or not at all.
func (db *DB) DeleteRange(start, end []byte) error {
	if db.router != nil {
		return db.router.DeleteRange(start, end)
	}
	return db.single.DeleteRange(start, end)
}

// GetMulti reads several keys in one operation. Results are positional:
// values[i] and errs[i] answer keys[i], with ErrNotFound per missing key.
// All lookups are answered from one pinned version per engine — cheaper
// and more consistent than n sequential Gets; on a sharded store the
// groups run shard-concurrently (per-shard consistency; use Snapshot for
// a single cross-shard cut).
func (db *DB) GetMulti(keys [][]byte) ([][]byte, []error) {
	if db.router != nil {
		return db.router.GetMulti(keys)
	}
	return db.single.GetMulti(keys)
}

// Batch collects writes for atomic application via Write.
type Batch = core.Batch

// Write applies every operation in the batch atomically: consecutive
// sequence numbers, logged together, all-or-nothing across a crash. On a
// sharded store the batch is split by routing hash and that guarantee
// holds per shard — each shard's slice commits as one unit, but a crash
// can surface some shards' slices without others'.
func (db *DB) Write(b *Batch) error {
	if db.router != nil {
		return db.router.Write(b)
	}
	return db.single.Write(b)
}

// Scan calls fn for up to limit live keys ≥ start, in order; fn returning
// false stops the scan. limit ≤ 0 scans to the end. On a sharded store
// the per-shard streams are heap-merged into one globally ordered scan.
// The key and value slices passed to fn alias store memory and are only
// valid for the duration of the callback; copy them to retain.
func (db *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	if db.router != nil {
		return db.router.Scan(start, limit, fn)
	}
	return db.single.Scan(start, limit, fn)
}

// Iterator walks a store's live keys in order. Close releases its
// snapshot; callers must Close every iterator before closing the store.
type Iterator interface {
	// SeekToFirst positions at the first live key.
	SeekToFirst()
	// Seek positions at the first live key ≥ key.
	Seek(key []byte)
	// Next advances to the next live key.
	Next()
	// Valid reports whether the iterator is positioned.
	Valid() bool
	// Key returns the current key (valid until Next/Close).
	Key() []byte
	// Value returns the current value (valid until Next/Close).
	Value() []byte
	// Err returns the iterator's sticky error.
	Err() error
	// Close releases the iterator's snapshot.
	Close()
}

// NewIterator returns an ordered iterator over live keys — on a sharded
// store, a k-way merge over every shard's snapshot. Callers must Close
// it to release its snapshot(s).
func (db *DB) NewIterator() Iterator {
	if db.router != nil {
		return db.router.NewIterator()
	}
	return db.single.NewIterator()
}

// Snapshot is a long-lived consistent read-only view of the store: every
// read answers exactly as of capture time, no matter how many writes,
// flushes, or compactions happen afterwards. Snapshots are O(1) to take —
// a version pin plus a sequence bound, no data copied — and arbitrarily
// long-lived; the cost of holding one is that memory superseded after the
// capture cannot be reclaimed until it closes. Callers must Close every
// snapshot (and every iterator derived from one) before closing the
// store, exactly like an Iterator.
type Snapshot interface {
	// Get returns the value key had at capture, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// GetMulti reads several keys from the cut, positionally; all
	// answers are mutually consistent.
	GetMulti(keys [][]byte) ([][]byte, []error)
	// Scan calls fn for up to limit keys ≥ start as of capture, in
	// order; fn returning false stops early. limit ≤ 0 means no limit.
	Scan(start []byte, limit int, fn func(key, value []byte) bool) error
	// NewIterator returns an ordered iterator over the cut. It holds its
	// own reference and stays valid even if the Snapshot closes first.
	NewIterator() Iterator
	// Close releases the snapshot, letting reclamation resume.
	// Idempotent.
	Close() error
}

// coreSnapshot adapts *core.Snapshot's concrete iterator to the public
// interface; shardSnapshot does the same for the cross-shard cut.
type coreSnapshot struct{ *core.Snapshot }

func (s coreSnapshot) NewIterator() Iterator { return s.Snapshot.NewIterator() }

type shardSnapshot struct{ *shard.Snapshot }

func (s shardSnapshot) NewIterator() Iterator { return s.Snapshot.NewIterator() }

// Snapshot captures a consistent view of the store. On a sharded store
// the capture briefly coordinates with every shard's commit path (all
// commit locks taken in shard order before any bound is read), so the cut
// is consistent across shards: a multi-shard batch is either entirely
// visible or entirely invisible. Returns ErrSnapshotUnsupported on
// SSD-mode stores.
func (db *DB) Snapshot() (Snapshot, error) {
	if db.router != nil {
		s, err := db.router.Snapshot()
		if err != nil {
			return nil, err
		}
		return shardSnapshot{s}, nil
	}
	s, err := db.single.Snapshot()
	if err != nil {
		return nil, err
	}
	return coreSnapshot{s}, nil
}

// SnapshotView adapts Snapshot to the kvstore.Snapshotter capability the
// network server probes for, so a served DB answers the SNAP protocol
// ops.
func (db *DB) SnapshotView() (kvstore.SnapshotView, error) {
	s, err := db.Snapshot()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ValueLogEnabled reports whether the store was opened with key-value
// separation (Options.ValueLog) — the kvstore.ValueLogger capability
// probe tools use to detect value-log-capable stores.
func (db *DB) ValueLogEnabled() bool {
	if db.router != nil {
		return db.router.ValueLogEnabled()
	}
	return db.single.ValueLogEnabled()
}

// RunValueLogGC reclaims value-log segments until none qualifies: every
// sealed segment whose dead-space fraction is at or above the configured
// GCDeadRatio has its live values relocated through the normal write path
// and its memory queued for release once no snapshot or in-flight read
// can still reference it. It returns the number of segments reclaimed
// (across all shards on a sharded store). The background GC loop runs the
// same reclamation on compaction activity; calling this forces a full
// pass now. A no-op returning 0 when separation is off. Safe to call
// concurrently with reads, writes, and snapshots.
func (db *DB) RunValueLogGC() (int, error) {
	if db.router != nil {
		return db.router.RunValueLogGC()
	}
	return db.single.RunValueLogGC()
}

// Flush forces the DRAM buffer(s) out and waits for all background
// compaction to drain.
func (db *DB) Flush() error {
	if db.router != nil {
		return db.router.FlushAll()
	}
	return db.single.FlushAll()
}

// Checkpoint writes the store's persistent state to a file (atomically).
// On real NVM hardware the memory itself is the durable medium; under
// simulation, checkpoint images provide process-level durability:
// OpenImage restores a store from one through the crash-recovery path.
// A sharded store writes one file holding every shard's image with the
// shard count recorded in the header.
//
// SSD-mode stores (Options.UseSSD) cannot be checkpointed: images
// capture the NVM state only, so an image of a store whose repository
// lives on the simulated SSD would silently miss that data. Checkpoint
// refuses rather than writing an incomplete image.
func (db *DB) Checkpoint(path string) error {
	if db.ssd {
		return fmt.Errorf("miodb: cannot checkpoint an SSD-mode store: images capture the NVM state only (the SSD-resident repository would be lost)")
	}
	if db.router != nil {
		return db.router.Checkpoint(path)
	}
	return db.single.Checkpoint(path)
}

// OpenImage restores a store from a checkpoint file written by
// Checkpoint. opts must carry the same structural settings (Levels,
// Shards) the checkpointed store used; nil means defaults. The image's
// recorded shard count is validated: restoring a sharded image with a
// mismatched Shards value is rejected (Shards = 0 adopts the recorded
// count), as is restoring a single-engine image with Shards > 1.
// Restoring with UseSSD is rejected — images hold the NVM state only.
func OpenImage(path string, opts *Options) (*DB, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts != nil && opts.UseSSD {
		// The shared translation means UseSSD reaches core (which
		// refuses SSD-mode recovery); reject here with the fuller story.
		// Earlier versions silently dropped the flag and restored a
		// different configuration.
		return nil, fmt.Errorf("miodb: cannot restore with UseSSD: checkpoint images capture the NVM state only, and SSD-mode recovery is not supported")
	}
	co := opts.coreOptions()
	_, sharded, err := shard.ImageInfo(path)
	if err != nil {
		return nil, err
	}
	want := opts.shardCount()
	if sharded {
		if opts == nil || opts.Shards == 0 {
			want = 0 // defaults adopt the image's recorded count
		}
		router, err := shard.OpenImage(path, want, co)
		if err != nil {
			return nil, err
		}
		return &DB{router: router}, nil
	}
	if want > 1 {
		return nil, fmt.Errorf("miodb: shard-count mismatch: image is single-engine, options request %d shards", want)
	}
	inner, err := core.OpenImage(path, co)
	if err != nil {
		return nil, err
	}
	return &DB{single: inner}, nil
}

// Stats returns the store's cost accounting. For a sharded store the
// counters aggregate every shard (stalls are maxima — shards stall in
// parallel) and Stats.Shards holds the per-shard breakdown.
func (db *DB) Stats() Stats {
	if db.router != nil {
		return db.router.Stats()
	}
	return db.single.Stats()
}

// Err reports the store's latched background error, if any. A non-nil
// result wraps ErrDegraded: a flush, compaction, or manifest append hit a
// persistent device fault, the store refused to release any state the
// last recoverable image depends on, and it now serves reads only. On a
// sharded store the first shard error latches and stays the reported
// cause; only that shard refuses writes.
func (db *DB) Err() error {
	if db.router != nil {
		return db.router.Err()
	}
	return db.single.Err()
}

// Close drains background work and shuts the store down. Callers must
// stop issuing operations first.
func (db *DB) Close() error {
	if db.router != nil {
		return db.router.Close()
	}
	return db.single.Close()
}
