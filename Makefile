GO ?= go

.PHONY: all build vet test race check torture apicheck bench-concurrent bench-readscale bench-shardscale bench-netscale bench-multiget bench-stability bench-membalance bench-valuesize profile repro clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent write path (group-commit queue, WAL batch appends,
# zero-copy merges under readers), the shard router (cross-shard
# batch splits, merged iterators, parallel flush/close), and the
# pipelined network front end (reader/writer split, cross-connection
# batcher, tag-matched client) must stay race-clean.
race:
	$(GO) test -race ./internal/core ./internal/wal ./internal/shard ./internal/server ./internal/client

# Crash-torture: randomized power failures, torn writes, and interrupted
# recoveries under the race detector (50+ cycles; deterministic per seed).
torture:
	$(GO) test -race ./internal/core -run 'TestCrashTorture|TestDoubleCrashDuringRecovery' -v

# Public-API break detection for the root miodb package, against the
# previous tag (or commit). Soft by default: skips without the apidiff
# tool, warns without APIDIFF_STRICT=1 — CI sets both.
apicheck:
	sh scripts/apidiff.sh

# check is the gate for every change: build, vet, full tests, the race
# detector over the concurrency-heavy packages, the crash-torture run,
# and the public-API diff.
check: vet build test race torture apicheck

# Multi-writer throughput sweep (group commit vs serialized vs baselines).
bench-concurrent:
	$(GO) test ./internal/bench -run xxx -bench ConcurrentWrites -benchtime 1x

# Multi-reader throughput sweep (epoch-pinned reads vs mutex-refcount
# ablation, read-only + YCSB-B/C mixes, 1..16 threads); also writes the
# machine-readable BENCH_readscale.json artifact to the repo root.
bench-readscale:
	$(GO) run ./cmd/miodb-repro -experiment readscale -json_dir .

# Shard-scaling sweep (fill + readrandom vs shard count, 8 threads);
# emits the EXPERIMENTS.md shard table and BENCH_shardscale.json.
bench-shardscale:
	$(GO) run ./cmd/miodb-repro -experiment shardscale -json_dir .

# Network front-end sweep (loopback connections × pipeline window vs a
# window=1 ablation and a local 8-writer reference); also writes the
# machine-readable BENCH_netscale.json artifact to the repo root.
bench-netscale:
	$(GO) run ./cmd/miodb-repro -experiment netscale -json_dir .

# Versioned read API: GetMulti vs the same lookups as N concurrent
# pipelined Gets, group sizes 1-16 over loopback; writes
# BENCH_multiget.json.
bench-multiget:
	$(GO) run ./cmd/miodb-repro -experiment multiget -json_dir .

# Sustained-fill stability: throughput-over-time and tail traces for
# MioDB (unbounded vs admission-bounded) against the baselines; writes
# BENCH_stability.json with the per-bin timelines.
bench-stability:
	$(GO) run ./cmd/miodb-repro -experiment stability -json_dir .

# Adaptive memory governor: skewed zipfian traffic over 8 shards,
# adaptive vs static budget split at equal total memory; writes
# BENCH_membalance.json with per-shard flush counts and memtable-target
# timelines.
bench-membalance:
	$(GO) run ./cmd/miodb-repro -experiment membalance -json_dir .

# Key-value separation: fillrandom/readrandom and write amplification
# across value sizes (128 B – 256 KB), value log on vs off at equal
# memory budget; writes BENCH_valuesize.json.
bench-valuesize:
	$(GO) run ./cmd/miodb-repro -experiment valuesize -json_dir .

# Capture mutex/block contention profiles from 8-thread read-only
# readscale runs of both read-path arms (epoch-pinned and the
# mutex-refcount ablation, so the removed db.mu contention is visible
# side by side). Inspect with:
#   go tool pprof profiles/readscale.test profiles/mutex.out
#   go tool pprof profiles/readscale.test profiles/block.out
profile:
	mkdir -p profiles
	$(GO) test ./internal/bench -run xxx \
		-bench 'ConcurrentReads/readonly/miodb/threads=8' -benchtime 1x \
		-mutexprofile mutex.out -blockprofile block.out \
		-outputdir $(CURDIR)/profiles -o profiles/readscale.test

# Regenerate every paper table/figure (about an hour at full scale).
repro:
	$(GO) run ./cmd/miodb-repro -all

clean:
	$(GO) clean ./...
