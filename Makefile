GO ?= go

.PHONY: all build vet test race check bench-concurrent repro clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent write path (group-commit queue, WAL batch appends,
# zero-copy merges under readers) must stay race-clean.
race:
	$(GO) test -race ./internal/core ./internal/wal

# check is the gate for every change: build, vet, full tests, and the
# race detector over the concurrency-heavy packages.
check: vet build test race

# Multi-writer throughput sweep (group commit vs serialized vs baselines).
bench-concurrent:
	$(GO) test ./internal/bench -run xxx -bench ConcurrentWrites -benchtime 1x

# Regenerate every paper table/figure (about an hour at full scale).
repro:
	$(GO) run ./cmd/miodb-repro -all

clean:
	$(GO) clean ./...
