GO ?= go

.PHONY: all build vet test race check torture bench-concurrent repro clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent write path (group-commit queue, WAL batch appends,
# zero-copy merges under readers) must stay race-clean.
race:
	$(GO) test -race ./internal/core ./internal/wal

# Crash-torture: randomized power failures, torn writes, and interrupted
# recoveries under the race detector (50+ cycles; deterministic per seed).
torture:
	$(GO) test -race ./internal/core -run 'TestCrashTorture|TestDoubleCrashDuringRecovery' -v

# check is the gate for every change: build, vet, full tests, the race
# detector over the concurrency-heavy packages, and the crash-torture run.
check: vet build test race torture

# Multi-writer throughput sweep (group commit vs serialized vs baselines).
bench-concurrent:
	$(GO) test ./internal/bench -run xxx -bench ConcurrentWrites -benchtime 1x

# Regenerate every paper table/figure (about an hour at full scale).
repro:
	$(GO) run ./cmd/miodb-repro -all

clean:
	$(GO) clean ./...
