// Command miodb-repro regenerates the paper's tables and figures.
//
// Usage:
//
//	miodb-repro -list
//	miodb-repro -experiment fig6 [-scale 1.0]
//	miodb-repro -all [-scale 1.0]
//
// Scale 1.0 runs the full 1/1000-scaled reproduction (80 MB datasets);
// smaller scales shrink datasets proportionally for quick passes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"miodb/internal/bench"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		experiment = flag.String("experiment", "", "experiment ID to run (fig2..fig14, table1..table3, ablation)")
		all        = flag.Bool("all", false, "run every experiment")
		scale      = flag.Float64("scale", 1.0, "dataset scale (1.0 = full 1/1000-scaled reproduction)")
		seed       = flag.Int64("seed", 0, "workload seed override")
		jsonDir    = flag.String("json_dir", "", "directory for machine-readable BENCH_<id>.json artifacts (empty = don't write)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	p := bench.Params{Scale: *scale, Out: os.Stdout, Seed: *seed, JSONDir: *jsonDir}
	switch {
	case *all:
		start := time.Now()
		if _, err := bench.RunAll(p); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\nall experiments completed in %s\n", time.Since(start).Round(time.Second))
	case *experiment != "":
		e, ok := bench.FindExperiment(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *experiment)
			os.Exit(1)
		}
		start := time.Now()
		if _, err := e.Run(p); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s completed in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
