// Command miodb-server exposes any of the four stores over TCP with the
// repository's length-prefixed binary protocol (internal/server), turning
// the reproduction into a network-attachable KV service.
//
// Example:
//
//	miodb-server -addr 127.0.0.1:7707 -store miodb
//
// The matching Go client is internal/server.Client.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"miodb/internal/bench"
	"miodb/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7707", "listen address")
		store    = flag.String("store", "miodb", "store: miodb | leveldb | novelsm | novelsm-nosst | novelsm-hier | matrixkv")
		memtable = flag.Int64("write_buffer_size", 64<<10, "memtable size in bytes")
		shards   = flag.Int("shards", 1, "miodb shard count (hash-partitioned engines; 1 = single engine)")
		ssd      = flag.Bool("ssd", false, "use the DRAM-NVM-SSD hierarchy")
		simulate = flag.Bool("simulate", false, "enable device latency models")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards %d: must be >= 1 (1 = single engine)\n", *shards)
		os.Exit(2)
	}

	s, err := bench.OpenStore(bench.Config{
		Kind:         bench.StoreKind(*store),
		MemTableSize: *memtable,
		Shards:       *shards,
		SSD:          *ssd,
		Simulate:     *simulate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open store:", err)
		os.Exit(1)
	}

	srv := server.New(s)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("miodb-server: store=%s shards=%d listening on %s\n", *store, *shards, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	srv.Close()
	if err := s.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "flush:", err)
	}
	s.Close()
}
