// Command miodb-server exposes any of the four stores over TCP with the
// repository's binary protocol (internal/server), turning the
// reproduction into a network-attachable KV service. Both protocol
// versions are served on one port: the legacy lockstep framing and the
// tagged pipelined framing (many requests in flight per connection,
// all connections' writes feeding shared group commits).
//
// Example:
//
//	miodb-server -addr 127.0.0.1:7707 -store miodb -window 256
//
// The matching Go clients are internal/client (pipelined) and
// internal/server.Client (legacy).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"miodb/internal/bench"
	"miodb/internal/core"
	"miodb/internal/server"
	"miodb/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7707", "listen address")
		store    = flag.String("store", "miodb", "store: miodb | leveldb | novelsm | novelsm-nosst | novelsm-hier | matrixkv")
		memtable = flag.Int64("write_buffer_size", 64<<10, "memtable size in bytes")
		shards   = flag.Int("shards", 1, "miodb shard count (hash-partitioned engines; 1 = single engine)")
		ssd      = flag.Bool("ssd", false, "use the DRAM-NVM-SSD hierarchy")
		simulate = flag.Bool("simulate", false, "enable device latency models")
		window   = flag.Int("window", 0, "per-connection in-flight request cap for pipelined connections (0 = default)")
		pending  = flag.Int("max_pending", 0, "global in-flight request cap across all connections (0 = default)")
		drain    = flag.Duration("drain_timeout", 0, "how long shutdown waits for in-flight requests (0 = default)")
		softImms = flag.Int("soft_imms", 0, "miodb admission control: throttle commits at this imms backlog (0 = off)")
		hardImms = flag.Int("hard_imms", 0, "miodb admission control: block commits at this imms backlog (0 = off)")
		budget   = flag.Int64("memory_budget", 0, "global memtable budget in bytes split across shards (0 = per-shard write_buffer_size)")
		governor = flag.Bool("governor", false, "adaptively rebalance the memtable budget across shards by write heat (requires -shards > 1)")
		valueLog = flag.Bool("value_log", false, "miodb key-value separation: append large values to a value log, store 16-byte pointers in the LSM")
		valueThr = flag.Int("value_threshold", 0, "minimum value size in bytes routed to the value log (0 = default 1024; implies -value_log)")
		valueSSD = flag.Bool("value_log_ssd", false, "place value-log segments on the simulated SSD tier (implies -value_log)")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards %d: must be >= 1 (1 = single engine)\n", *shards)
		os.Exit(2)
	}

	cfg := bench.Config{
		Kind:         bench.StoreKind(*store),
		MemTableSize: *memtable,
		Shards:       *shards,
		SSD:          *ssd,
		Simulate:     *simulate,
	}
	if *softImms > 0 || *hardImms > 0 {
		cfg.Admission = &core.AdmissionOptions{SoftImms: *softImms, HardImms: *hardImms}
	}
	cfg.MemoryBudget = *budget
	if *governor {
		cfg.Governor = &shard.GovernorOptions{}
	}
	if *valueLog || *valueThr > 0 || *valueSSD {
		cfg.ValueLog = &core.ValueLogOptions{Threshold: *valueThr, OnSSD: *valueSSD}
	}
	s, err := bench.OpenStore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open store:", err)
		os.Exit(1)
	}

	srv := server.NewWithOptions(s, server.Options{
		Window:       *window,
		MaxPending:   *pending,
		DrainTimeout: *drain,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("miodb-server: store=%s shards=%d listening on %s\n", *store, *shards, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	srv.Close()
	if err := s.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "flush:", err)
	}
	s.Close()
}
