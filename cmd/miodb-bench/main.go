// Command miodb-bench is the db_bench-style micro-benchmark driver
// (LevelDB's db_bench, §5.1): it runs fillseq / fillrandom / readseq /
// readrandom workloads against any of the four stores and reports
// throughput, latency percentiles, and the store's cost accounting.
//
// Example:
//
//	miodb-bench -store miodb -benchmarks fillrandom,readrandom -num 20000 -value_size 4096
//	miodb-bench -store novelsm -benchmarks fillseq,readseq -ssd
//	miodb-bench -store miodb -reps 3 -json bench.json   # machine-readable record
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"miodb/internal/bench"
	"miodb/internal/core"
	"miodb/internal/shard"
	"miodb/internal/stats"
)

func main() {
	var (
		store      = flag.String("store", "miodb", "store: miodb | leveldb | novelsm | novelsm-nosst | novelsm-hier | matrixkv")
		benchmarks = flag.String("benchmarks", "fillrandom,readrandom", "comma-separated: fillseq,fillrandom,readseq,readrandom,stats")
		num        = flag.Int("num", 20000, "number of entries")
		reads      = flag.Int("reads", 0, "number of reads (default: num)")
		valueSize  = flag.Int("value_size", 4096, "value size in bytes")
		memtable   = flag.Int64("write_buffer_size", 64<<10, "memtable size in bytes")
		levels     = flag.Int("levels", 8, "miodb elastic-buffer levels")
		shards     = flag.Int("shards", 1, "miodb shard count (hash-partitioned engines; 1 = single engine)")
		ssd        = flag.Bool("ssd", false, "use the DRAM-NVM-SSD hierarchy")
		seed       = flag.Int64("seed", 1, "workload seed")
		threads    = flag.Int("threads", 1, "concurrent goroutines for fill and readrandom benchmarks")
		batch      = flag.Int("batch", 1, "client-side batch size for concurrent fills (uses MPUT-style batches when > 1)")
		zipfian    = flag.Bool("zipfian", false, "use zipfian keys for concurrent fills (default uniform)")
		noGroup    = flag.Bool("no_group_commit", false, "disable miodb's group-commit pipeline (serialized write path)")
		mutexReads = flag.Bool("mutex_reads", false, "disable miodb's lock-free read path (mutex-refcount version pinning)")
		softImms   = flag.Int("soft_imms", 0, "miodb admission control: throttle commits at this imms backlog (0 = off)")
		hardImms   = flag.Int("hard_imms", 0, "miodb admission control: block commits at this imms backlog (0 = off)")
		memBudget  = flag.Int64("memory_budget", 0, "global memtable budget in bytes split across shards (0 = per-shard write_buffer_size)")
		governor   = flag.Bool("governor", false, "adaptively rebalance the memtable budget across shards by write heat (requires -shards > 1)")
		valueLog   = flag.Bool("value_log", false, "miodb key-value separation: append large values to a value log, store 16-byte pointers in the LSM")
		valueThres = flag.Int("value_threshold", 0, "minimum value size in bytes routed to the value log (0 = default 1024; implies -value_log)")
		valueOnSSD = flag.Bool("value_log_ssd", false, "place value-log segments on the simulated SSD tier (implies -value_log)")
		jsonOut    = flag.String("json", "", "write a machine-readable record of every run to this path")
		reps       = flag.Int("reps", 1, "repetitions per benchmark (reported best; all reps recorded in -json output)")
	)
	flag.Parse()
	if *reads <= 0 {
		*reads = *num
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards %d: must be >= 1 (1 = single engine)\n", *shards)
		os.Exit(2)
	}

	cfg := bench.Config{
		Kind:         bench.StoreKind(*store),
		MemTableSize: *memtable,
		Levels:       *levels,
		Shards:       *shards,
		SSD:          *ssd,
		Simulate:     true,
	}
	if *noGroup {
		cfg.GroupCommit = core.Bool(false)
	}
	if *mutexReads {
		cfg.EpochReads = core.Bool(false)
	}
	if *softImms > 0 || *hardImms > 0 {
		cfg.Admission = &core.AdmissionOptions{SoftImms: *softImms, HardImms: *hardImms}
	}
	cfg.MemoryBudget = *memBudget
	if *governor {
		cfg.Governor = &shard.GovernorOptions{}
	}
	if *valueLog || *valueThres > 0 || *valueOnSSD {
		cfg.ValueLog = &core.ValueLogOptions{Threshold: *valueThres, OnSSD: *valueOnSSD}
	}
	s, err := bench.OpenStore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer s.Close()

	fmt.Printf("store=%s entries=%d value_size=%d memtable=%d ssd=%v shards=%d\n",
		*store, *num, *valueSize, *memtable, *ssd, *shards)

	report := func(name string, r bench.RunResult) {
		fmt.Printf("%-12s : %8.1f KIOPS  (%d ops in %v; avg %.1fµs p99 %.1fµs p99.9 %.1fµs)\n",
			name, r.KIOPS, r.Ops, r.Duration.Round(1e6),
			r.Latency.Mean.Seconds()*1e6, r.Latency.P99.Seconds()*1e6, r.Latency.P999.Seconds()*1e6)
	}

	if *reps < 1 {
		*reps = 1
	}
	var jr *bench.JSONReport
	if *jsonOut != "" {
		jr = bench.NewJSONReport("miodb-bench", map[string]interface{}{
			"store": *store, "num": *num, "reads": *reads, "value_size": *valueSize,
			"memtable": *memtable, "levels": *levels, "shards": *shards, "ssd": *ssd,
			"threads": *threads, "batch": *batch, "zipfian": *zipfian,
			"seed": *seed, "reps": *reps,
		})
	}
	// measure runs one benchmark reps times on the shared store (fixed
	// seeds keep the key set stable across reps, so repeated fills
	// overwrite rather than grow the dataset), prints the best run, and
	// records every rep in the JSON document.
	measure := func(name string, fn func(rep int) (bench.RunResult, error)) {
		var runs []bench.RunResult
		best := bench.RunResult{}
		for rep := 0; rep < *reps; rep++ {
			r, err := fn(rep)
			exitOn(err)
			runs = append(runs, r)
			if r.KIOPS >= best.KIOPS {
				best = r
			}
		}
		report(name, best)
		if jr != nil {
			jr.AddRuns(name, nil, runs, nil)
		}
	}

	for _, b := range strings.Split(*benchmarks, ",") {
		switch strings.TrimSpace(b) {
		case "fillseq":
			measure("fillseq", func(int) (bench.RunResult, error) {
				return bench.FillSeq(s, *num, *valueSize, nil)
			})
		case "fillrandom":
			if *threads > 1 {
				dist := bench.Uniform
				if *zipfian {
					dist = bench.Zipfian
				}
				measure(fmt.Sprintf("fillrandom×%d", *threads), func(rep int) (bench.RunResult, error) {
					return bench.ConcurrentBatchFill(s, *num, uint64(*num), *valueSize, *seed+int64(rep), *threads, *batch, dist)
				})
			} else {
				measure("fillrandom", func(rep int) (bench.RunResult, error) {
					return bench.FillRandom(s, *num, uint64(*num), *valueSize, *seed+int64(rep), nil)
				})
			}
		case "readseq":
			exitOn(s.Flush())
			measure("readseq", func(int) (bench.RunResult, error) {
				return bench.ReadSeq(s, *reads)
			})
		case "readrandom":
			exitOn(s.Flush())
			var misses int
			if *threads > 1 {
				measure(fmt.Sprintf("readrandom×%d", *threads), func(rep int) (bench.RunResult, error) {
					r, m, err := bench.ConcurrentReadRandom(s, *reads, uint64(*num), *seed+1+int64(rep), *threads)
					misses = m
					return r, err
				})
			} else {
				measure("readrandom", func(rep int) (bench.RunResult, error) {
					r, m, err := bench.ReadRandom(s, *reads, uint64(*num), *seed+1+int64(rep))
					misses = m
					return r, err
				})
			}
			if misses > 0 {
				fmt.Printf("  (%d of %d reads missed — fillrandom leaves key gaps)\n", misses, *reads)
			}
		case "stats":
			st := s.Stats()
			fmt.Printf("stats        : WA=%.2f interval-stall=%v×%d cumulative-stall=%v flush=%v×%d serialize=%v deserialize=%v\n",
				st.WriteAmplification, st.IntervalStall.Round(1e6), st.IntervalStalls, st.CumulativeStall.Round(1e6),
				st.FlushTime.Round(1e6), st.Flushes, st.SerializeTime.Round(1e6), st.DeserializeTime.Round(1e6))
			// Per-op latency distributions measured inside the store (not
			// the harness), merged across shards.
			for op := stats.Op(0); op < stats.NumOps; op++ {
				snap := st.OpLatencies[op]
				if snap.Count == 0 {
					continue
				}
				fmt.Printf("  lat %-7s: count=%d p50=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs\n",
					op, snap.Count,
					snap.P50.Seconds()*1e6, snap.P99.Seconds()*1e6,
					snap.P999.Seconds()*1e6, snap.Max.Seconds()*1e6)
			}
			if st.PendingImms > 0 || st.L0Tables > 0 {
				fmt.Printf("  backlog: pending-imms=%d (%dKB) l0-tables=%d (%dKB)\n",
					st.PendingImms, st.PendingImmBytes>>10, st.L0Tables, st.L0Bytes>>10)
			}
			if st.WriteGroups > 0 {
				fmt.Printf("  group commit: %d groups / %d writes (mean group size %.2f)\n",
					st.WriteGroups, st.GroupedWrites, st.MeanGroupSize)
			}
			for i, sh := range st.Shards {
				fmt.Printf("  shard %d: puts=%d gets=%d deletes=%d WA=%.2f flushes=%d rotations=%d memtarget=%dKB\n",
					i, sh.Puts, sh.Gets, sh.Deletes, sh.WriteAmplification, sh.Flushes, sh.Rotations, sh.MemTableTargetBytes>>10)
			}
			if st.BloomProbes > 0 {
				fmt.Printf("  bloom: probes=%d skips=%d false-positives=%d measured-fp-rate=%.4f\n",
					st.BloomProbes, st.BloomSkips, st.BloomFalsePositives, st.BloomFalsePositiveRate)
				for _, bl := range st.BloomLevels {
					if bl.Probes == 0 {
						continue
					}
					fmt.Printf("    level %d: probes=%d skips=%d fps=%d hits=%d fp-rate=%.4f\n",
						bl.Level, bl.Probes, bl.Skips, bl.FalsePositives, bl.Hits, bl.FalsePositiveRate)
				}
			}
			if st.LiveVersions > 0 {
				fmt.Printf("  versions: live=%d pending-releases=%d epoch=%d swept=%d\n",
					st.LiveVersions, st.PendingReleases, st.ReadEpoch, st.VersionsSwept)
			}
			for _, d := range st.Devices {
				fmt.Printf("  device %-10s written=%dKB read=%dKB\n", d.Name, d.BytesWritten>>10, d.BytesRead>>10)
			}
			if ms, ok := s.(interface{ CompactionStats() []core.CompactionStats }); ok {
				for _, ls := range ms.CompactionStats() {
					if ls.Merges == 0 {
						continue
					}
					fmt.Printf("  level %d: merges=%d nodes=%d garbage=%dKB\n",
						ls.Level, ls.Merges, ls.NodesMoved, ls.GarbageBytes>>10)
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", b)
			os.Exit(2)
		}
	}

	if jr != nil {
		exitOn(jr.Write(*jsonOut))
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
