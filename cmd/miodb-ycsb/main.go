// Command miodb-ycsb drives the YCSB workloads (Cooper et al.) against
// any of the four stores, as in the paper's §5.2: a load phase followed
// by workloads A–F, with throughput and tail-latency reporting.
//
// Example:
//
//	miodb-ycsb -store miodb -records 20000 -ops 12000 -workloads A,B,C,D,E,F
//	miodb-ycsb -store matrixkv -value_size 1024 -workloads A -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"miodb/internal/bench"
	"miodb/internal/core"
	"miodb/internal/histogram"
	"miodb/internal/shard"
	"miodb/internal/stats"
)

func main() {
	var (
		store     = flag.String("store", "miodb", "store: miodb | leveldb | novelsm | novelsm-nosst | novelsm-hier | matrixkv")
		records   = flag.Uint64("records", 20000, "records to load")
		ops       = flag.Int("ops", 12000, "operations per workload")
		valueSize = flag.Int("value_size", 4096, "value size in bytes")
		workloads = flag.String("workloads", "A,B,C,D,E,F", "comma-separated workload letters (A-F, plus M: 95% 8-key multi-gets / 5% updates)")
		shards    = flag.Int("shards", 1, "miodb shard count (hash-partitioned engines; 1 = single engine)")
		ssd       = flag.Bool("ssd", false, "use the DRAM-NVM-SSD hierarchy")
		timeline  = flag.Bool("timeline", false, "print a latency-over-time sparkline per workload (Fig 8)")
		seed      = flag.Int64("seed", 1, "workload seed")
		memBudget = flag.Int64("memory_budget", 0, "global memtable budget in bytes split across shards (0 = per-shard default)")
		governor  = flag.Bool("governor", false, "adaptively rebalance the memtable budget across shards by write heat (requires -shards > 1)")
		valueLog  = flag.Bool("value_log", false, "miodb key-value separation: append large values to a value log, store 16-byte pointers in the LSM")
		valueThr  = flag.Int("value_threshold", 0, "minimum value size in bytes routed to the value log (0 = default 1024; implies -value_log)")
		valueSSD  = flag.Bool("value_log_ssd", false, "place value-log segments on the simulated SSD tier (implies -value_log)")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards %d: must be >= 1 (1 = single engine)\n", *shards)
		os.Exit(2)
	}

	cfg := bench.Config{
		Kind:         bench.StoreKind(*store),
		Shards:       *shards,
		SSD:          *ssd,
		Simulate:     true,
		MemoryBudget: *memBudget,
	}
	if *governor {
		cfg.Governor = &shard.GovernorOptions{}
	}
	if *valueLog || *valueThr > 0 || *valueSSD {
		cfg.ValueLog = &core.ValueLogOptions{Threshold: *valueThr, OnSSD: *valueSSD}
	}
	s, err := bench.OpenStore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer s.Close()

	fmt.Printf("store=%s records=%d ops=%d value_size=%d shards=%d ssd=%v\n",
		*store, *records, *ops, *valueSize, *shards, *ssd)

	loadRes, err := bench.YCSBLoad(s, *records, *valueSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Printf("load : %8.1f KIOPS  avg=%.1fµs p99.9=%.1fµs\n",
		loadRes.KIOPS, loadRes.Latency.Mean.Seconds()*1e6, loadRes.Latency.P999.Seconds()*1e6)

	for i, w := range strings.Split(*workloads, ",") {
		w = strings.ToUpper(strings.TrimSpace(w))
		var tl *histogram.Timeline
		if *timeline {
			tl = histogram.NewTimeline(20 * time.Millisecond)
		}
		res, err := bench.YCSBRun(s, w, *ops, *records, *valueSize, *seed+int64(i), tl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload %s: %v\n", w, err)
			os.Exit(1)
		}
		l := res.Latency
		fmt.Printf("%-5s: %8.1f KIOPS  avg=%.1fµs p90=%.1fµs p99=%.1fµs p99.9=%.1fµs\n",
			w, res.KIOPS,
			l.Mean.Seconds()*1e6, l.P90.Seconds()*1e6, l.P99.Seconds()*1e6, l.P999.Seconds()*1e6)
		if tl != nil {
			fmt.Printf("      spikes=%.1f  %s\n", tl.SpikeFactor(), tl.Sparkline())
		}
	}

	st := s.Stats()
	fmt.Printf("WA=%.2f interval-stall=%v×%d cumulative-stall=%v\n",
		st.WriteAmplification, st.IntervalStall.Round(1e6), st.IntervalStalls, st.CumulativeStall.Round(1e6))
	// Per-shard op counts on a sharded store: how evenly the routing hash
	// spread the workload, plus each shard's flush count and memtable
	// target (the governor's current division of the budget).
	for i, sh := range st.Shards {
		fmt.Printf("shard %d: ops=%d (puts=%d gets=%d deletes=%d scans=%d) flushes=%d memtarget=%dKB\n",
			i, sh.Puts+sh.Gets+sh.Deletes+sh.Scans,
			sh.Puts, sh.Gets, sh.Deletes, sh.Scans, sh.Flushes, sh.MemTableTargetBytes>>10)
	}
	// The store's own per-op distributions (the harness percentiles above
	// measure whole YCSB ops, which may bundle a read and a write).
	for op := stats.Op(0); op < stats.NumOps; op++ {
		snap := st.OpLatencies[op]
		if snap.Count == 0 {
			continue
		}
		fmt.Printf("lat %-7s: count=%d p50=%.1fµs p99=%.1fµs p99.9=%.1fµs\n",
			op, snap.Count,
			snap.P50.Seconds()*1e6, snap.P99.Seconds()*1e6, snap.P999.Seconds()*1e6)
	}
}
