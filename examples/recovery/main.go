// Recovery: the crash-consistency walk-through of §4.7. The example
// writes through the engine, simulates a power failure mid-stream (the
// DRAM buffer is lost; the simulated NVM survives), recovers from the
// superblock + write-ahead log, and verifies every acknowledged write —
// including a second crash on the recovered store.
//
// It uses the engine package directly because crash injection is not part
// of the public API.
package main

import (
	"fmt"
	"log"

	"miodb/internal/core"
)

func main() {
	opts := core.Options{MemTableSize: 16 << 10, Levels: 4}
	db, err := core.Open(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Write enough that data is spread across every tier: the live
	// memtable (WAL only), the elastic buffer, and the repository.
	const n = 3000
	fmt.Printf("writing %d entries...\n", n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("account/%05d", i%1000)
		v := fmt.Sprintf("balance=%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("repository holds %d keys; elastic buffer levels: %v\n",
		db.RepositoryCount(), db.LevelTableCounts())

	// Power cut. Background work is abandoned mid-flight; only the
	// simulated NVM (superblock, WALs, PMTables, repository) survives.
	fmt.Println("simulating power failure...")
	img := db.CrashForTest()

	re, err := core.Recover(img, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered: replayed WALs, re-attached PMTables, resumed compactions")

	// Every acknowledged write must be visible with its newest value.
	bad := 0
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("account/%05d", i)
		want := fmt.Sprintf("balance=%d", lastWrite(i, n))
		got, err := re.Get([]byte(k))
		if err != nil || string(got) != want {
			bad++
		}
	}
	fmt.Printf("verification: %d/1000 keys wrong after recovery\n", bad)

	// Crash again immediately — recovery must be idempotent.
	fmt.Println("simulating a second power failure...")
	img2 := re.CrashForTest()
	re2, err := core.Recover(img2, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer re2.Close()
	bad = 0
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("account/%05d", i)
		want := fmt.Sprintf("balance=%d", lastWrite(i, n))
		got, err := re2.Get([]byte(k))
		if err != nil || string(got) != want {
			bad++
		}
	}
	fmt.Printf("after double crash: %d/1000 keys wrong\n", bad)
	if bad == 0 {
		fmt.Println("all acknowledged writes survived both crashes")
	}
}

// lastWrite returns the value index of the final write to key i%1000.
func lastWrite(key, n int) int {
	last := key
	for v := key; v < n; v += 1000 {
		last = v
	}
	return last
}
