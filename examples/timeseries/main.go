// Timeseries: an append-mostly telemetry workload — sequential inserts of
// timestamped samples followed by time-range queries. Sequential writes
// are LSM stores' best case; this example shows the iterator API and how
// range scans behave once the data has settled into the bottom-level
// repository (one big sorted skip list — the paper's scan-friendly
// structure, §5.2 workload E discussion). It ends with a time-travel
// query: a Snapshot taken mid-ingest keeps answering from that instant
// even as ingest continues and old samples are retired with DeleteRange.
package main

import (
	"fmt"
	"log"
	"time"

	"miodb"
)

const (
	series  = 4
	samples = 5000
)

// sampleKey encodes series/timestamp so samples sort by series, then time.
func sampleKey(series int, ts int64) []byte {
	return []byte(fmt.Sprintf("metric/%02d/%012d", series, ts))
}

func main() {
	db, err := miodb.Open(&miodb.Options{Simulate: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest: interleaved sequential appends across a few series.
	fmt.Printf("ingesting %d samples across %d series...\n", series*samples, series)
	start := time.Now()
	base := int64(1_700_000_000_000)
	for t := 0; t < samples; t++ {
		for s := 0; s < series; s++ {
			value := fmt.Sprintf("%d.%03d", 20+s, t%997)
			if err := db.Put(sampleKey(s, base+int64(t)*1000), []byte(value)); err != nil {
				log.Fatal(err)
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested in %v (%.1f KIOPS)\n",
		elapsed.Round(time.Millisecond),
		float64(series*samples)/elapsed.Seconds()/1000)

	// Let compaction settle everything into the repository, then scan.
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// Range query: one hour of series 2.
	from := sampleKey(2, base+1000*1000)
	n := 0
	scanStart := time.Now()
	err = db.Scan(from, 3600, func(k, v []byte) bool {
		n++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query: %d samples in %v\n", n, time.Since(scanStart).Round(time.Microsecond))

	// Full-series iteration via the iterator API.
	it := db.NewIterator()
	defer it.Close()
	count := 0
	first, last := "", ""
	for it.Seek([]byte("metric/03/")); it.Valid(); it.Next() {
		if string(it.Key()) >= "metric/04/" {
			break
		}
		if count == 0 {
			first = string(it.Key())
		}
		last = string(it.Key())
		count++
	}
	fmt.Printf("series 03: %d samples, %s .. %s\n", count, first, last)

	st := db.Stats()
	fmt.Printf("sequential ingest write amplification: %.2f\n", st.WriteAmplification)

	// Time travel: pin "now", then keep ingesting and retire the oldest
	// half of every series with one range tombstone per series. The
	// snapshot is O(1) — no data copied — and still answers exactly as of
	// capture, while live queries see only the retained window.
	snap, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	for t := samples; t < samples+1000; t++ {
		for s := 0; s < series; s++ {
			if err := db.Put(sampleKey(s, base+int64(t)*1000), []byte("late")); err != nil {
				log.Fatal(err)
			}
		}
	}
	for s := 0; s < series; s++ {
		// Retention: drop everything before the series' midpoint.
		if err := db.DeleteRange(sampleKey(s, 0), sampleKey(s, base+int64(samples/2)*1000)); err != nil {
			log.Fatal(err)
		}
	}

	liveN, snapN := 0, 0
	if err := db.Scan([]byte("metric/"), 0, func(k, v []byte) bool { liveN++; return true }); err != nil {
		log.Fatal(err)
	}
	if err := snap.Scan([]byte("metric/"), 0, func(k, v []byte) bool { snapN++; return true }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retention pass: live store %d samples, snapshot (as of capture) still %d\n", liveN, snapN)
}
