// Usertable: the latency-sensitive service workload that motivates the
// paper — a user-profile store under a zipfian read/update mix (YCSB-A
// shape). It loads a table of user records, runs a skewed mix, and prints
// the latency percentiles the paper's SLA discussion (§1) cares about,
// demonstrating that the elastic buffer keeps tails flat even while the
// whole dataset churns through flushes and compactions.
package main

import (
	"fmt"
	"log"
	"time"

	"miodb"
	"miodb/internal/histogram"
	"miodb/internal/ycsb"
)

const (
	users     = 5000
	valueSize = 1024
	ops       = 20000
)

func main() {
	db, err := miodb.Open(&miodb.Options{Simulate: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load phase: one profile blob per user.
	fmt.Printf("loading %d user profiles (%d B each)...\n", users, valueSize)
	loadStart := time.Now()
	for i := uint64(0); i < users; i++ {
		if err := db.Put(ycsb.Key(i), ycsb.Value(i, 0, valueSize)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded in %v (%.1f KIOPS)\n",
		time.Since(loadStart).Round(time.Millisecond),
		float64(users)/time.Since(loadStart).Seconds()/1000)

	// Serving phase: 50/50 zipfian reads and profile updates.
	chooser := ycsb.NewZipfianChooser(users, 42)
	reads := histogram.New()
	writes := histogram.New()
	fmt.Printf("serving %d zipfian operations (50%% reads / 50%% updates)...\n", ops)
	for i := 0; i < ops; i++ {
		u := chooser.Choose(users)
		if i%2 == 0 {
			t0 := time.Now()
			if _, err := db.Get(ycsb.Key(u)); err != nil && err != miodb.ErrNotFound {
				log.Fatal(err)
			}
			reads.Record(time.Since(t0))
		} else {
			t0 := time.Now()
			if err := db.Put(ycsb.Key(u), ycsb.Value(u, i, valueSize)); err != nil {
				log.Fatal(err)
			}
			writes.Record(time.Since(t0))
		}
	}

	r, w := reads.Snapshot(), writes.Snapshot()
	fmt.Printf("reads : %s\n", r)
	fmt.Printf("writes: %s\n", w)

	st := db.Stats()
	fmt.Printf("write stalls: interval=%v cumulative=%v (MioDB's elastic buffer keeps these at zero)\n",
		st.IntervalStall, st.CumulativeStall)
	fmt.Printf("write amplification: %.2f (WAL + one-piece flush + lazy copy ≈ 3)\n",
		st.WriteAmplification)

	// Drop-table: every ycsb key shares the "user" prefix, so retiring the
	// whole table is one O(1) range tombstone — no per-key deletes, no scan.
	// The covered records are reclaimed later by the normal compaction
	// pipeline.
	dropStart := time.Now()
	if err := db.DeleteRange([]byte("user"), []byte("uses")); err != nil {
		log.Fatal(err)
	}
	dropped := time.Since(dropStart)
	remaining := 0
	if err := db.Scan([]byte("user"), 0, func(k, v []byte) bool { remaining++; return true }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dropped table of %d records in %v (%d remain)\n",
		users, dropped.Round(time.Microsecond), remaining)
}
