// Quickstart: open a MioDB store, write, read, scan, and inspect the
// cost accounting — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	"miodb"
)

func main() {
	db, err := miodb.Open(nil) // paper defaults, scaled for one machine
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Write a few key-value pairs. Each Put is durable in the simulated
	// NVM write-ahead log when it returns.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("fruit/%02d", i)
		value := fmt.Sprintf("crate-%d", i*i)
		if err := db.Put([]byte(key), []byte(value)); err != nil {
			log.Fatal(err)
		}
	}

	// Point lookup.
	v, err := db.Get([]byte("fruit/07"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fruit/07 = %s\n", v)

	// Delete hides a key.
	if err := db.Delete([]byte("fruit/07")); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Get([]byte("fruit/07")); err == miodb.ErrNotFound {
		fmt.Println("fruit/07 deleted")
	}

	// Ordered range scan.
	fmt.Println("first five fruits from fruit/10:")
	err = db.Scan([]byte("fruit/10"), 5, func(k, v []byte) bool {
		fmt.Printf("  %s = %s\n", k, v)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	// Force the buffer out and report the paper's headline metric.
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("puts=%d gets=%d write-amplification=%.2f stalls=%v\n",
		st.Puts, st.Gets, st.WriteAmplification, st.IntervalStall+st.CumulativeStall)
}
