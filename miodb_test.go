package miodb

import (
	"bytes"
	"fmt"
	"testing"

	"miodb/internal/kvstore"
)

// The public handle satisfies the repository-wide store contract, so it
// is drop-in usable anywhere the harness or server accepts a store.
var _ kvstore.Store = (*DB)(nil)

func TestPublicAPIRoundTrip(t *testing.T) {
	db, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("user:%04d", i)), []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get([]byte("user:0042"))
	if err != nil || string(v) != "profile-42" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Delete([]byte("user:0042")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("user:0042")); err != ErrNotFound {
		t.Fatalf("deleted key err = %v", err)
	}

	n := 0
	err = db.Scan([]byte("user:0100"), 50, func(k, v []byte) bool {
		if !bytes.HasPrefix(k, []byte("user:")) {
			t.Errorf("unexpected key %q", k)
		}
		n++
		return true
	})
	if err != nil || n != 50 {
		t.Fatalf("Scan n=%d err=%v", n, err)
	}

	it := db.NewIterator()
	it.SeekToFirst()
	if !it.Valid() || string(it.Key()) != "user:0000" {
		t.Fatalf("iterator first = %q", it.Key())
	}
	it.Close()

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Puts != 500 || s.WriteAmplification <= 0 {
		t.Errorf("stats: puts=%d WA=%.2f", s.Puts, s.WriteAmplification)
	}
}

func TestPublicAPISSDMode(t *testing.T) {
	db, err := Open(&Options{UseSSD: true, MemTableSize: 8 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Flush()
	for _, i := range []int{0, 999, 1999} {
		v, err := db.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
}

func Example() {
	db, _ := Open(nil)
	defer db.Close()
	db.Put([]byte("greeting"), []byte("hello, hybrid memory"))
	v, _ := db.Get([]byte("greeting"))
	fmt.Println(string(v))
	// Output: hello, hybrid memory
}

func TestPublicCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.img"
	db, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := OpenImage(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v, err := re.Get([]byte("k0123"))
	if err != nil || string(v) != "v123" {
		t.Fatalf("restored Get = %q, %v", v, err)
	}
}
