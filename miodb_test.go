package miodb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"miodb/internal/kvstore"
)

// The public handle satisfies the repository-wide store contract, so it
// is drop-in usable anywhere the harness or server accepts a store.
var _ kvstore.Store = (*DB)(nil)

func TestPublicAPIRoundTrip(t *testing.T) {
	db, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("user:%04d", i)), []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get([]byte("user:0042"))
	if err != nil || string(v) != "profile-42" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Delete([]byte("user:0042")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("user:0042")); err != ErrNotFound {
		t.Fatalf("deleted key err = %v", err)
	}

	n := 0
	err = db.Scan([]byte("user:0100"), 50, func(k, v []byte) bool {
		if !bytes.HasPrefix(k, []byte("user:")) {
			t.Errorf("unexpected key %q", k)
		}
		n++
		return true
	})
	if err != nil || n != 50 {
		t.Fatalf("Scan n=%d err=%v", n, err)
	}

	it := db.NewIterator()
	it.SeekToFirst()
	if !it.Valid() || string(it.Key()) != "user:0000" {
		t.Fatalf("iterator first = %q", it.Key())
	}
	it.Close()

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Puts != 500 || s.WriteAmplification <= 0 {
		t.Errorf("stats: puts=%d WA=%.2f", s.Puts, s.WriteAmplification)
	}
}

func TestPublicAPISSDMode(t *testing.T) {
	db, err := Open(&Options{UseSSD: true, MemTableSize: 8 << 10, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Flush()
	for _, i := range []int{0, 999, 1999} {
		v, err := db.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
}

func Example() {
	db, _ := Open(nil)
	defer db.Close()
	db.Put([]byte("greeting"), []byte("hello, hybrid memory"))
	v, _ := db.Get([]byte("greeting"))
	fmt.Println(string(v))
	// Output: hello, hybrid memory
}

func TestPublicCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.img"
	db, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	db.Close()

	re, err := OpenImage(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v, err := re.Get([]byte("k0123"))
	if err != nil || string(v) != "v123" {
		t.Fatalf("restored Get = %q, %v", v, err)
	}
}

// TestOpenRejectsInvalidOptions pins the validation contract: invalid
// option values are refused with errors that name the offending field,
// zero values always mean "use the default", and OpenImage applies the
// same checks before it ever touches the image file.
func TestOpenRejectsInvalidOptions(t *testing.T) {
	cases := []struct {
		name string
		opts *Options
		want string // substring the error must carry
	}{
		{"negative-memtable", &Options{MemTableSize: -1}, "MemTableSize"},
		{"levels-below-range", &Options{Levels: 1}, "Levels"},
		{"levels-above-range", &Options{Levels: 65}, "Levels"},
		{"negative-timescale", &Options{TimeScale: -0.5}, "TimeScale"},
		{"negative-shards", &Options{Shards: -1}, "Shards"},
		{"too-many-shards", &Options{Shards: 1025}, "Shards"},
		{"negative-vlog-threshold", &Options{ValueLog: &ValueLogOptions{Threshold: -1}}, "ValueLog.Threshold"},
		{"negative-vlog-segment", &Options{ValueLog: &ValueLogOptions{SegmentSize: -1}}, "ValueLog.SegmentSize"},
		{"vlog-ratio-above-one", &Options{ValueLog: &ValueLogOptions{GCDeadRatio: 1.5}}, "ValueLog.GCDeadRatio"},
		{"vlog-ratio-negative", &Options{ValueLog: &ValueLogOptions{GCDeadRatio: -0.1}}, "ValueLog.GCDeadRatio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.opts); err == nil {
				t.Fatalf("Open accepted %+v", tc.opts)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Open error %q does not name %s", err, tc.want)
			}
			// Same gate on the restore entry point, checked before the
			// path: a missing file must not mask the option error.
			if _, err := OpenImage("/nonexistent/img", tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("OpenImage error %v does not name %s", err, tc.want)
			}
		})
	}
	// Zero values stay valid: nil, the zero struct, and explicit zeros.
	for _, opts := range []*Options{nil, {}, {MemTableSize: 0, Levels: 0, TimeScale: 0, Shards: 0}} {
		db, err := Open(opts)
		if err != nil {
			t.Fatalf("Open(%+v) = %v", opts, err)
		}
		db.Close()
	}
}

// TestOpenImageHonorsUseSSD guards the once-dropped option: earlier
// versions silently ignored UseSSD on restore (and wrote NVM-only
// images of SSD stores whose repository data they could not carry).
// Both entry points now refuse descriptively instead of silently
// producing or restoring an incomplete configuration.
func TestOpenImageHonorsUseSSD(t *testing.T) {
	opts := &Options{UseSSD: true, MemTableSize: 8 << 10, Levels: 3}
	dir := t.TempDir()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// An SSD-mode store's repository lives on the simulated disk; an
	// NVM-only image of it would silently lose that data.
	if err := db.Checkpoint(dir + "/ssd.img"); err == nil || !strings.Contains(err.Error(), "SSD") {
		t.Fatalf("Checkpoint of SSD-mode store: err = %v, want SSD refusal", err)
	}

	// Restoring a (valid, non-SSD) image with UseSSD set must refuse
	// rather than drop the flag — the pre-fix behavior.
	path := dir + "/plain.img"
	plain, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	plain.Put([]byte("k"), []byte("v"))
	if err := plain.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	plain.Close()
	if _, err := OpenImage(path, &Options{UseSSD: true}); err == nil || !strings.Contains(err.Error(), "UseSSD") {
		t.Fatalf("OpenImage with UseSSD: err = %v, want descriptive refusal", err)
	}
	re, err := OpenImage(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, err := re.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("plain restore Get = %q, %v", v, err)
	}
}

// TestShardedPublicAPI exercises Options.Shards end to end through the
// public surface: transparent routing, merged scans, aggregated stats
// with the per-shard breakdown, cross-shard batches, and the sharded
// checkpoint/restore path with its shard-count validation.
func TestShardedPublicAPI(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sharded.img"
	// Default structural options, so the nil-opts restore below matches
	// the checkpointed structure (OpenImage's documented contract).
	db, err := Open(&Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	b := &Batch{}
	b.Put([]byte("batch-a"), []byte("1"))
	b.Put([]byte("batch-b"), []byte("2"))
	b.Delete([]byte("k0001"))
	if err := db.Write(b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k0001")); err != ErrNotFound {
		t.Fatalf("batched delete not applied: %v", err)
	}
	if v, err := db.Get([]byte("batch-b")); err != nil || string(v) != "2" {
		t.Fatalf("batched put = %q, %v", v, err)
	}

	// Merged scan is globally ordered across shards.
	var last string
	n := 0
	err = db.Scan([]byte("k"), 0, func(k, v []byte) bool {
		if last != "" && string(k) <= last {
			t.Fatalf("scan out of order: %q after %q", k, last)
		}
		last = string(k)
		n++
		return true
	})
	if err != nil || n != 599 {
		t.Fatalf("scan n=%d err=%v", n, err)
	}

	st := db.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("Stats().Shards len = %d", len(st.Shards))
	}
	if st.Puts != 602 {
		t.Errorf("aggregated puts = %d, want 602", st.Puts)
	}

	if err := db.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// nil options adopt the image's recorded shard count.
	re, err := OpenImage(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Stats().Shards); got != 4 {
		t.Fatalf("restored shard count = %d", got)
	}
	if v, err := re.Get([]byte("k0042")); err != nil || string(v) != "v42" {
		t.Fatalf("restored Get = %q, %v", v, err)
	}
	re.Close()

	// A mismatched count is refused; so is opening a single-engine
	// image with Shards > 1.
	if _, err := OpenImage(path, &Options{Shards: 2}); err == nil || !strings.Contains(err.Error(), "shard-count mismatch") {
		t.Fatalf("mismatched shard count: err = %v", err)
	}
	single := dir + "/single.img"
	sdb, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	sdb.Put([]byte("k"), []byte("v"))
	if err := sdb.Checkpoint(single); err != nil {
		t.Fatal(err)
	}
	sdb.Close()
	if _, err := OpenImage(single, &Options{Shards: 4}); err == nil || !strings.Contains(err.Error(), "shard-count mismatch") {
		t.Fatalf("single image with Shards=4: err = %v", err)
	}
}

// TestPublicValueLog exercises Options.ValueLog end to end through the
// public surface, single-engine and sharded: large values round-trip
// through the log, small ones stay inline, the ValueLogger capability
// probe answers correctly on both arms, and an explicit GC pass after a
// heavy overwrite succeeds while every key still reads back its newest
// value.
func TestPublicValueLog(t *testing.T) {
	big := func(tag string, n int) []byte {
		v := bytes.Repeat([]byte(tag+"|"), n/(len(tag)+1)+1)
		return v[:n]
	}
	for _, tc := range []struct {
		name string
		opts *Options
	}{
		{"single", &Options{MemTableSize: 16 << 10, Levels: 3, ValueLog: &ValueLogOptions{Threshold: 256, SegmentSize: 16 << 10}}},
		{"sharded", &Options{Shards: 2, MemTableSize: 16 << 10, Levels: 3, ValueLog: &ValueLogOptions{Threshold: 256, SegmentSize: 16 << 10}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			var probe kvstore.ValueLogger = db
			if !probe.ValueLogEnabled() {
				t.Fatal("ValueLogEnabled() = false on a value-log store")
			}
			// Overwrite a small working set with large values many times so
			// early segments go mostly dead, plus inline-sized values to
			// cover the threshold split.
			for round := 0; round < 20; round++ {
				for i := 0; i < 16; i++ {
					k := []byte(fmt.Sprintf("big:%02d", i))
					if err := db.Put(k, big(fmt.Sprintf("r%d-i%d", round, i), 600)); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < 16; i++ {
				if err := db.Put([]byte(fmt.Sprintf("small:%02d", i)), []byte("inline")); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := db.RunValueLogGC(); err != nil {
				t.Fatalf("RunValueLogGC: %v", err)
			}
			for i := 0; i < 16; i++ {
				k := []byte(fmt.Sprintf("big:%02d", i))
				want := big(fmt.Sprintf("r19-i%d", i), 600)
				if v, err := db.Get(k); err != nil || !bytes.Equal(v, want) {
					t.Fatalf("Get(%s) after GC = %d bytes, %v", k, len(v), err)
				}
				if v, err := db.Get([]byte(fmt.Sprintf("small:%02d", i))); err != nil || string(v) != "inline" {
					t.Fatalf("small Get = %q, %v", v, err)
				}
			}
			// Scans resolve pointers transparently too.
			n := 0
			err = db.Scan([]byte("big:"), 16, func(k, v []byte) bool {
				if len(v) != 600 {
					t.Fatalf("scan yielded %d-byte value for %q", len(v), k)
				}
				n++
				return true
			})
			if err != nil || n != 16 {
				t.Fatalf("scan n=%d err=%v", n, err)
			}
		})
	}
	// The nil arm answers the capability probe negatively and treats GC
	// as a no-op.
	plain, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.ValueLogEnabled() {
		t.Fatal("ValueLogEnabled() = true without Options.ValueLog")
	}
	if n, err := plain.RunValueLogGC(); n != 0 || err != nil {
		t.Fatalf("RunValueLogGC on plain store = %d, %v", n, err)
	}
}

// TestToggleForms: the plain Disable* toggles must configure a working
// store, alone and together (the deprecated GroupCommit pointer form and
// its Bool helper were removed from the public surface; internal/core
// keeps the pointer option for its ablation tests).
func TestToggleForms(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts *Options
	}{
		{"disable-group-commit", &Options{DisableGroupCommit: true}},
		{"disable-epoch-reads", &Options{DisableEpochReads: true}},
		{"both-ablations", &Options{DisableGroupCommit: true, DisableEpochReads: true}},
		{"sharded-ablations", &Options{Shards: 2, DisableGroupCommit: true, DisableEpochReads: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 200; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if v, err := db.Get([]byte("k007")); err != nil || string(v) != "v" {
				t.Fatalf("Get = %q, %v", v, err)
			}
		})
	}
}
