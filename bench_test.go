// Benchmarks that regenerate the paper's evaluation. One benchmark per
// table/figure (DESIGN.md §3 maps them); each runs the corresponding
// experiment from internal/bench and reports its headline figures as
// custom metrics. Sizes default to a small smoke scale so the whole suite
// completes quickly; set MIODB_BENCH_SCALE=1.0 for the full 1/1000-scaled
// reproduction (also available as `go run ./cmd/miodb-repro -all`).
//
// Micro-benchmarks for the public API (Put/Get/Scan) follow at the end —
// they are conventional testing.B loops with allocation reporting.
package miodb

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	"miodb/internal/bench"
)

func benchScale() float64 {
	if v := os.Getenv("MIODB_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.05
}

// verbose mirrors experiment tables to stdout when -v is set via
// MIODB_BENCH_VERBOSE.
func benchOut() io.Writer {
	if os.Getenv("MIODB_BENCH_VERBOSE") != "" {
		return os.Stdout
	}
	return io.Discard
}

func runExperiment(b *testing.B, id string) {
	e, ok := bench.FindExperiment(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	p := bench.Params{Scale: benchScale(), Out: benchOut()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_Motivation regenerates Figure 2 (baseline stalls,
// deserialization, flush throughput, WA).
func BenchmarkFig2_Motivation(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig6_MicroThroughput regenerates Figure 6 (db_bench throughput
// vs value size, in-memory mode).
func BenchmarkFig6_MicroThroughput(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable1_CostAnalysis regenerates Table 1 (stall/deserialize/
// flush/WA cost breakdown).
func BenchmarkTable1_CostAnalysis(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig7_YCSB regenerates Figure 7 (YCSB Load and A–F throughput).
func BenchmarkFig7_YCSB(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable2_TailLatency regenerates Table 2 (workload A latency
// percentiles, in-memory mode).
func BenchmarkTable2_TailLatency(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig8_LatencyTimeline regenerates Figure 8 (latency-over-time
// spikes).
func BenchmarkFig8_LatencyTimeline(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9_LevelSweep regenerates Figure 9 (levels / compaction
// threads sensitivity).
func BenchmarkFig9_LevelSweep(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10_DatasetSweep regenerates Figure 10 (dataset size vs
// throughput).
func BenchmarkFig10_DatasetSweep(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11_WriteAmp regenerates Figure 11 (WA vs dataset size).
func BenchmarkFig11_WriteAmp(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12_MemtableSweep regenerates Figure 12 (memtable size vs
// flush latency/throughput).
func BenchmarkFig12_MemtableSweep(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13_SSDMode regenerates Figure 13 (DRAM-NVM-SSD hierarchy
// throughput).
func BenchmarkFig13_SSDMode(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable3_SSDTailLatency regenerates Table 3 (workload A
// percentiles in the hierarchy mode).
func BenchmarkTable3_SSDTailLatency(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig14_BufferSweep regenerates Figure 14 (NVM buffer size
// sensitivity).
func BenchmarkFig14_BufferSweep(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblation_DesignChoices runs the MioDB design ablations
// (one-piece flush, zero-copy merge, parallel compaction, bloom filters,
// WAL).
func BenchmarkAblation_DesignChoices(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkExtra_ScanSettle validates §5.2's workload-E prose claim
// (scan throughput approaches NoveLSM-NoSST once compactions settle).
func BenchmarkExtra_ScanSettle(b *testing.B) { runExperiment(b, "extra-escan") }

// BenchmarkExtra_NoveLSMVariants compares the paper's Figure 1 NoveLSM
// architectures (flat vs hierarchical vs NoSST).
func BenchmarkExtra_NoveLSMVariants(b *testing.B) { runExperiment(b, "extra-novelsm") }

// --- Public-API micro-benchmarks -----------------------------------------

// BenchmarkPut measures the client write path (WAL append + memtable
// insert) without device latency injection.
func BenchmarkPut(b *testing.B) {
	for _, vs := range []int{128, 1024, 4096} {
		b.Run(fmt.Sprintf("value=%d", vs), func(b *testing.B) {
			db, err := Open(&Options{MemTableSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			value := make([]byte, vs)
			key := make([]byte, 16)
			b.ReportAllocs()
			b.SetBytes(int64(vs + 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(key, fmt.Sprintf("%016d", i))
				if err := db.Put(key, value); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGet measures point lookups against a settled store (most hits
// come from the bottom-level repository, the paper's common case).
func BenchmarkGet(b *testing.B) {
	db, err := Open(&Options{MemTableSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 20000
	value := make([]byte, 1024)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("%016d", i)), value); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("%016d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScan measures ordered iteration over the repository.
func BenchmarkScan(b *testing.B) {
	db, err := Open(&Options{MemTableSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 20000
	value := make([]byte, 256)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("%016d", i)), value); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		err := db.Scan(nil, 1000, func(k, v []byte) bool {
			count++
			return true
		})
		if err != nil || count != 1000 {
			b.Fatalf("scan: count=%d err=%v", count, err)
		}
	}
}
